// Package bench holds the micro-benchmark bodies for the Alg. 1 hot path
// and its ablations in library form, so the same workloads can run both
// under `go test -bench` (via the delegating Benchmark* functions in the
// repo root) and inside cmd/soundbench, which executes them with
// testing.Benchmark and emits machine-readable JSON.
package bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"runtime"
	"testing"
	"time"

	"sound"
	"sound/internal/checker"
	"sound/internal/checkpoint"
	"sound/internal/core"
	"sound/internal/ingest"
	"sound/internal/resample"
	"sound/internal/rng"
	"sound/internal/series"
	"sound/internal/stream"
	"sound/internal/wire"
)

// Spec names one benchmark workload. Variants of an ablation appear as
// separate specs with the conventional "Parent/variant" name so JSON
// output matches `go test -bench` reporting.
type Spec struct {
	Name string
	Fn   func(*testing.B)
}

// Specs returns the benchmark workloads covered by soundbench's JSON
// output: the core Evaluate* paths and the DESIGN.md §5 ablations.
func Specs() []Spec {
	return []Spec{
		{"EvaluatePointCheck", EvaluatePointCheck},
		{"EvaluateSequenceCheck", EvaluateSequenceCheck},
		{"EvaluateAllParallel", EvaluateAllParallel},
		{"AblationEarlyStop/adaptive", func(b *testing.B) { AblationEarlyStop(b, 1) }},
		{"AblationEarlyStop/fixedN", func(b *testing.B) { AblationEarlyStop(b, 100) }},
		{"AblationBlockBootstrap/block", func(b *testing.B) { AblationBlockBootstrap(b, true) }},
		{"AblationBlockBootstrap/iid", func(b *testing.B) { AblationBlockBootstrap(b, false) }},
		{"AblationDecisionRule/credible95", func(b *testing.B) { AblationDecisionRule(b, 0.95) }},
		{"AblationDecisionRule/pointEstimate", func(b *testing.B) { AblationDecisionRule(b, 0.05) }},
		{"StreamCheck/point", func(b *testing.B) { StreamCheck(b, sound.PointWindow{}) }},
		{"StreamCheck/tumbling", func(b *testing.B) { StreamCheck(b, sound.TimeWindow{Size: 60}) }},
		{"StreamCheck/sliding", func(b *testing.B) { StreamCheck(b, sound.TimeWindow{Size: 60, Slide: 30}) }},
		{"StreamCheck/count", func(b *testing.B) { StreamCheck(b, sound.CountWindow{Size: 32}) }},
		{"StreamCheck/keyed", StreamCheckKeyed},
		{"StreamThroughput/batch1", func(b *testing.B) { StreamThroughput(b, 1) }},
		{"StreamThroughput/batch16", func(b *testing.B) { StreamThroughput(b, 16) }},
		{"StreamThroughput/batch64", func(b *testing.B) { StreamThroughput(b, 64) }},
		{"StreamThroughput/batch256", func(b *testing.B) { StreamThroughput(b, 256) }},
		{"StreamFusion/on", func(b *testing.B) { StreamFusion(b, true) }},
		{"StreamFusion/off", func(b *testing.B) { StreamFusion(b, false) }},
		{"Decode/frame", DecodeFrame},
		{"Decode/ndjson", DecodeNDJSON},
		{"Decode/csv", DecodeCSV},
		{"Ingest/loopback", IngestLoopback},
		{"Draw/point/scalar", func(b *testing.B) { Draw(b, resample.Point, false) }},
		{"Draw/point/kernel", func(b *testing.B) { Draw(b, resample.Point, true) }},
		{"Draw/set/scalar", func(b *testing.B) { Draw(b, resample.Set, false) }},
		{"Draw/set/kernel", func(b *testing.B) { Draw(b, resample.Set, true) }},
		{"Draw/sequence/scalar", func(b *testing.B) { Draw(b, resample.Sequence, false) }},
		{"Draw/sequence/kernel", func(b *testing.B) { Draw(b, resample.Sequence, true) }},
		{"Kernel/certain", func(b *testing.B) { Kernel(b, 0, 0) }},
		{"Kernel/symmetric", func(b *testing.B) { Kernel(b, 2, 2) }},
		{"Kernel/asymmetric", func(b *testing.B) { Kernel(b, 3, 1) }},
		{"Explain/unary", func(b *testing.B) { Explain(b, 1) }},
		{"Explain/binary", func(b *testing.B) { Explain(b, 2) }},
		{"Summarize/sequential", func(b *testing.B) { Summarize(b, 0) }},
		{"Summarize/parallel", func(b *testing.B) { Summarize(b, runtime.GOMAXPROCS(0)) }},
		{"Checkpoint/snapshot", func(b *testing.B) { Checkpoint(b, false) }},
		{"Checkpoint/restore", func(b *testing.B) { Checkpoint(b, true) }},
		{"MultiCheck/independent/checks1", func(b *testing.B) { MultiCheck(b, false, 1) }},
		{"MultiCheck/independent/checks8", func(b *testing.B) { MultiCheck(b, false, 8) }},
		{"MultiCheck/independent/checks64", func(b *testing.B) { MultiCheck(b, false, 64) }},
		{"MultiCheck/shared/checks1", func(b *testing.B) { MultiCheck(b, true, 1) }},
		{"MultiCheck/shared/checks8", func(b *testing.B) { MultiCheck(b, true, 8) }},
		{"MultiCheck/shared/checks64", func(b *testing.B) { MultiCheck(b, true, 64) }},
	}
}

// EvaluatePointCheck measures the core evaluation loop on a single
// certain point — the deterministic-collapse fast path.
func EvaluatePointCheck(b *testing.B) {
	data := sound.FromValues(50)
	c := sound.Range(0, 100)
	eval, err := sound.NewEvaluator(sound.DefaultParams(), 4)
	if err != nil {
		b.Fatal(err)
	}
	tuple := sound.PointWindow{}.Windows([]sound.Series{data})[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eval.Evaluate(c, tuple)
	}
}

// EvaluateSequenceCheck measures a windowed sequence evaluation (block
// bootstrap + correlation) on a 64-point binary window.
func EvaluateSequenceCheck(b *testing.B) {
	n := 64
	x := make(sound.Series, n)
	y := make(sound.Series, n)
	for i := range x {
		x[i] = sound.Point{T: float64(i), V: float64(i), SigUp: 1, SigDown: 1}
		y[i] = sound.Point{T: float64(i), V: float64(i) + 5, SigUp: 1, SigDown: 1}
	}
	c := sound.CorrelationAbove(0.2)
	eval, err := sound.NewEvaluator(sound.DefaultParams(), 5)
	if err != nil {
		b.Fatal(err)
	}
	tuple := sound.GlobalWindow{}.Windows([]sound.Series{x, y})[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eval.Evaluate(c, tuple)
	}
}

// EvaluateAllParallel measures the pooled-evaluator parallel path over
// 500 uncertain point windows; allocs/op tracks the O(workers) pooling
// claim.
func EvaluateAllParallel(b *testing.B) {
	s := make(sound.Series, 500)
	for i := range s {
		s[i] = sound.Point{T: float64(i), V: 10, SigUp: 1, SigDown: 1}
	}
	params := sound.Params{Credibility: 0.95, MaxSamples: 100}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sound.EvaluateAllParallel(sound.GreaterThan(5), sound.PointWindow{}, []sound.Series{s}, params, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// mixedDrawWindow builds a 64-point window with all three point classes
// in runs of eight — the shape quality flags take in practice, where
// sensor quality degrades and recovers in stretches rather than
// alternating point by point.
func mixedDrawWindow() series.Series {
	w := make(series.Series, 64)
	for i := range w {
		w[i] = series.Point{T: float64(i), V: float64(i % 17)}
		switch (i / 8) % 3 {
		case 1:
			w[i].SigUp, w[i].SigDown = 2, 2
		case 2:
			w[i].SigUp, w[i].SigDown = 3, 1
		}
	}
	return w
}

// Draw isolates one resampling iteration over a 64-point mixed-class
// window: the scalar per-point PerturbValue path (unprimed) against the
// compiled SoA kernel path (primed). The two draw bit-identical values
// (pinned by the resample parity tests); the spec pair measures what the
// compilation buys per draw.
func Draw(b *testing.B, strat resample.Strategy, kernel bool) {
	windows := []series.Series{mixedDrawWindow()}
	rs := resample.New(strat, rng.New(1))
	if kernel {
		rs.Prime(windows)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rs.Draw(windows)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(windows[0])), "ns/point")
}

// Kernel measures one primed point-strategy draw over a 64-point window
// of a single class (σ↑, σ↓) — the per-class kernels the run dispatch
// lands on: the certain memcpy, the symmetric single-normal loop, or the
// asymmetric branch-coin loop.
func Kernel(b *testing.B, sigUp, sigDown float64) {
	w := make(series.Series, 64)
	for i := range w {
		w[i] = series.Point{T: float64(i), V: float64(i), SigUp: sigUp, SigDown: sigDown}
	}
	windows := []series.Series{w}
	rs := resample.New(resample.Point, rng.New(1))
	rs.Prime(windows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rs.Draw(windows)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(w)), "ns/point")
}

// StreamCheck measures the generic online stream-check operator on a
// keyed event stream (8 keys, 4096 events per iteration), driving
// Process directly with a no-op emit so only the operator's own cost —
// routing, window bookkeeping, and evaluation — is on the clock. The
// ns/event metric is the per-event instrumentation overhead the paper's
// throughput experiments (Figs. 4-6) pay.
func StreamCheck(b *testing.B, win sound.Windower) {
	ck := core.Check{
		Name:        "range",
		Constraint:  core.Range(0, 100),
		SeriesNames: []string{"s"},
		Window:      win,
	}
	factory, err := checker.NewStreamChecker(checker.StreamCheck{
		Check:   ck,
		Params:  core.Params{Credibility: 0.95, MaxSamples: 100},
		Seed:    7,
		Forward: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	keys := [8]string{"h0", "h1", "h2", "h3", "h4", "h5", "h6", "h7"}
	events := make([]stream.Event, 4096)
	for i := range events {
		events[i] = stream.Event{Time: float64(i / 8), Key: keys[i%8], Value: 50, SigUp: 2, SigDown: 2}
	}
	emit := func(stream.Event) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := factory()
		for _, ev := range events {
			p.Process(ev, emit)
		}
		p.Flush(emit)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(events)), "ns/event")
}

// StreamCheckKeyed measures the operator's frame path: the same keyed
// tumbling-window workload as StreamCheck/tumbling, but delivered in
// 64-event transport frames through ProcessFrame the way a batched
// graph edge hands them over. Against StreamCheck/tumbling this prices
// what frame-at-a-time ingestion saves inside the operator (shared group
// lookups, deferred fire scans) on top of the engine's transport
// savings.
func StreamCheckKeyed(b *testing.B) {
	ck := core.Check{
		Name:        "range",
		Constraint:  core.Range(0, 100),
		SeriesNames: []string{"s"},
		Window:      sound.TimeWindow{Size: 60},
	}
	factory, err := checker.NewStreamChecker(checker.StreamCheck{
		Check:   ck,
		Params:  core.Params{Credibility: 0.95, MaxSamples: 100},
		Seed:    7,
		Forward: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	keys := [8]string{"h0", "h1", "h2", "h3", "h4", "h5", "h6", "h7"}
	events := make([]stream.Event, 4096)
	for i := range events {
		events[i] = stream.Event{Time: float64(i / 8), Key: keys[i%8], Value: 50, SigUp: 2, SigDown: 2}
	}
	const frameSize = 64
	emit := func(stream.Event) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := factory()
		fp := p.(stream.FrameProcessor)
		for at := 0; at < len(events); at += frameSize {
			fp.ProcessFrame(events[at:at+frameSize], emit)
		}
		p.Flush(emit)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(events)), "ns/event")
}

// Checkpoint measures the deterministic state lifecycle's snapshot
// codec (DESIGN.md §4i) on a populated keyed operator: 256 live groups
// of a tumbling uncertain-range check, each mid-window with buffered
// points. snapshot prices StreamRegistry.EncodeTo — the work done
// inside a stream barrier, and so the stall a running graph pays per
// checkpoint. restore prices decoding the document and re-hydrating a
// fresh worker (DecodeFrom plus registration), the resume cost after a
// kill. The ns/group metric normalizes by live group count.
func Checkpoint(b *testing.B, restore bool) {
	ck := core.Check{
		Name:        "range",
		Constraint:  core.Range(0, 100),
		SeriesNames: []string{"s"},
		Window:      sound.TimeWindow{Size: 60},
	}
	const nGroups = 256
	reg := checker.NewStreamRegistry()
	factory, err := checker.NewStreamChecker(checker.StreamCheck{
		Check:    ck,
		Params:   core.Params{Credibility: 0.95, MaxSamples: 100},
		Seed:     7,
		Registry: reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	p := factory()
	p.(stream.WorkerIndexed).SetWorkerIndex(0)
	emit := func(stream.Event) {}
	for i := 0; i < nGroups*16; i++ {
		p.Process(stream.Event{
			Time:    float64(i / nGroups),
			Key:     fmt.Sprintf("k%04d", i%nGroups),
			Value:   50,
			SigUp:   2,
			SigDown: 2,
		}, emit)
	}
	enc := checkpoint.NewEncoder()
	reg.EncodeTo(enc)
	snap := enc.Finish()
	b.SetBytes(int64(len(snap)))
	b.ReportAllocs()
	b.ResetTimer()
	if restore {
		for i := 0; i < b.N; i++ {
			dec, err := checkpoint.NewDecoder(snap)
			if err != nil {
				b.Fatal(err)
			}
			if err := reg.DecodeFrom(dec); err != nil {
				b.Fatal(err)
			}
			w := factory()
			w.(stream.WorkerIndexed).SetWorkerIndex(0)
		}
	} else {
		for i := 0; i < b.N; i++ {
			e := checkpoint.NewEncoder()
			reg.EncodeTo(e)
			e.Finish()
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nGroups), "ns/group")
}

// multiCheckSuite builds n distinct borderline unary constraints over
// one shared count window: same multiplexing class (params, window
// assigner, arity, seed), different decision surfaces — the shape a
// real suite of per-metric sanity checks takes.
func multiCheckSuite(n int) []core.Check {
	checks := make([]core.Check, n)
	for i := range checks {
		name := fmt.Sprintf("frac%02d", i)
		checks[i] = core.Check{
			Name:        name,
			Constraint:  core.FractionInRange(0, 9+float64(i%5), 0.7),
			SeriesNames: []string{"s"},
			Window:      sound.CountWindow{Size: 32},
		}
	}
	return checks
}

// MultiCheck prices a suite of n co-window checks on one uncertain
// keyed stream. independent runs n single-check operators side by side
// — n window extractions and n private sample matrices per window, the
// pre-multiplexing cost model. shared registers the same n checks in
// one Mux bucket: one extraction, one shared sample matrix drawn from
// the window-derived RNG, members retiring as their decisions land.
// The pair at equal n is the multiplexing speedup; the shared variant's
// draws/window metric staying flat from checks8 to checks64 is the
// shared-matrix claim measured directly.
func MultiCheck(b *testing.B, shared bool, nChecks int) {
	const nEvents = 2048
	params := core.Params{Credibility: 0.95, MaxSamples: 100}
	suite := multiCheckSuite(nChecks)
	keys := [8]string{"h0", "h1", "h2", "h3", "h4", "h5", "h6", "h7"}
	events := make([]stream.Event, nEvents)
	for i := range events {
		// Borderline values with real uncertainty: every window resolves
		// by sampling, so draw cost dominates and sharing has something
		// to save.
		events[i] = stream.Event{Time: float64(i / 8), Key: keys[i%8], Value: 5 + float64(i%9), SigUp: 2, SigDown: 2}
	}
	emit := func(stream.Event) {}
	var procs func() []stream.Processor
	var mux *checker.Mux
	if shared {
		mux = checker.NewMux(false, checker.EvictionPolicy{})
		for _, ck := range suite {
			if err := mux.Register(checker.MuxCheck{
				Name: ck.Name, Check: ck, Params: params, Seed: 7, RouteID: "event",
			}); err != nil {
				b.Fatal(err)
			}
		}
		factory := mux.Factory()
		procs = func() []stream.Processor { return []stream.Processor{factory()} }
	} else {
		factories := make([]func() stream.Processor, nChecks)
		for i, ck := range suite {
			f, err := checker.NewStreamChecker(checker.StreamCheck{Check: ck, Params: params, Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
			factories[i] = f
		}
		procs = func() []stream.Processor {
			ps := make([]stream.Processor, nChecks)
			for i, f := range factories {
				ps[i] = f()
			}
			return ps
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps := procs()
		for _, ev := range events {
			for _, p := range ps {
				p.Process(ev, emit)
			}
		}
		for _, p := range ps {
			p.Flush(emit)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nEvents), "ns/event")
	if mux != nil {
		for _, g := range mux.GroupStats() {
			if g.Shared && g.Windows > 0 {
				b.ReportMetric(float64(g.Draws)/float64(g.Windows), "draws/window")
			}
		}
	}
}

// StreamThroughput measures end-to-end ingest throughput through a real
// graph — source → keyed stream-check operator (4 workers) → sink — at
// the given transport batch size. The check itself (a tumbling range
// check on certain data) is deliberately cheap so the spec prices the
// transport: at batch size 1 every event pays a channel send per hop
// plus per-event counter and metrics updates; larger batches amortize
// all of it across the frame. The points/sec metric is the end-to-end
// ingest rate the online checking path sustains.
func StreamThroughput(b *testing.B, batchSize int) {
	const nEvents = 1 << 14
	ck := core.Check{
		Name:        "range",
		Constraint:  core.Range(0, 100),
		SeriesNames: []string{"s"},
		Window:      sound.TimeWindow{Size: 60},
	}
	factory, err := checker.NewStreamChecker(checker.StreamCheck{
		Check:   ck,
		Params:  core.Params{Credibility: 0.95, MaxSamples: 100},
		Seed:    7,
		Forward: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	keys := [8]string{"h0", "h1", "h2", "h3", "h4", "h5", "h6", "h7"}
	g := stream.NewGraph()
	g.SetBatchSize(batchSize)
	src := g.AddSource("src", func(emit stream.EmitFunc) {
		for i := 0; i < nEvents; i++ {
			emit(stream.Event{Time: float64(i / 8), Key: keys[i%8], Value: 50})
		}
	})
	chk := g.AddOperator("check", 4, factory)
	sink := g.AddSink("sink", nil)
	if err := g.ConnectKeyed(src, chk); err != nil {
		b.Fatal(err)
	}
	if err := g.Connect(chk, sink); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := g.Run()
		if err != nil {
			b.Fatal(err)
		}
		if m.Count("sink") != nEvents {
			b.Fatalf("sink saw %d events, want %d", m.Count("sink"), nEvents)
		}
	}
	b.ReportMetric(float64(b.N)*nEvents/b.Elapsed().Seconds(), "points/sec")
}

// StreamFusion prices the fused shard runtime directly: the same linear
// source → keyed check (1 worker) → sink chain — the topology every app
// and soundcheck -stream runs — executed with the planner forced on
// (one fused goroutine, no transport) and forced off (per-node
// goroutines over ring/channel edges). The delta between the two specs
// is the pure scheduling cost fusion removes.
func StreamFusion(b *testing.B, fuse bool) {
	const nEvents = 1 << 14
	ck := core.Check{
		Name:        "range",
		Constraint:  core.Range(0, 100),
		SeriesNames: []string{"s"},
		Window:      sound.TimeWindow{Size: 60},
	}
	factory, err := checker.NewStreamChecker(checker.StreamCheck{
		Check:   ck,
		Params:  core.Params{Credibility: 0.95, MaxSamples: 100},
		Seed:    7,
		Forward: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	keys := [8]string{"h0", "h1", "h2", "h3", "h4", "h5", "h6", "h7"}
	g := stream.NewGraph()
	g.SetFusion(fuse)
	src := g.AddSource("src", func(emit stream.EmitFunc) {
		for i := 0; i < nEvents; i++ {
			emit(stream.Event{Time: float64(i / 8), Key: keys[i%8], Value: 50})
		}
	})
	chk := g.AddOperator("check", 1, factory)
	sink := g.AddSink("sink", nil)
	if err := g.ConnectKeyed(src, chk); err != nil {
		b.Fatal(err)
	}
	if err := g.Connect(chk, sink); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := g.Run()
		if err != nil {
			b.Fatal(err)
		}
		if m.Count("sink") != nEvents {
			b.Fatalf("sink saw %d events, want %d", m.Count("sink"), nEvents)
		}
	}
	b.ReportMetric(float64(b.N)*nEvents/b.Elapsed().Seconds(), "points/sec")
}

// trendWindow builds an n-point window with a linear trend plus a small
// deterministic ripple, uniform uncertainty sigma, and unit time spacing.
func trendWindow(n int, base, slope, sigma float64) sound.Series {
	s := make(sound.Series, n)
	for i := range s {
		s[i] = sound.Point{
			T: float64(i), V: base + slope*float64(i) + 0.1*float64(i%5),
			SigUp: sigma, SigDown: sigma,
		}
	}
	return s
}

// Explain measures the explanation of one change point (paper §V-B
// what-if re-evaluations) for a check of the given arity. The windows
// differ in sparsity and uncertainty, so the E2 and E4 counterfactual
// Monte-Carlo evaluations both run — the per-unit work the parallel
// engine fans out.
func Explain(b *testing.B, arity int) {
	var c sound.Constraint
	switch arity {
	case 1:
		c = sound.GreaterThan(10)
		c.Granularity = sound.WindowTime
	case 2:
		c = sound.CorrelationAbove(0.2)
	default:
		b.Fatalf("unsupported arity %d", arity)
	}
	pos := make([]sound.Series, arity)
	neg := make([]sound.Series, arity)
	for j := range pos {
		pos[j] = trendWindow(48, 12, 0.05*float64(j+1), 2)
		neg[j] = trendWindow(16, 7, -0.05*float64(j+1), 3)
	}
	cp := sound.ChangePoint{
		Index: 1,
		Pos:   sound.WindowTuple{Windows: pos, Start: 0, End: 1, Index: 0},
		Neg:   sound.WindowTuple{Windows: neg, Start: 1, End: 2, Index: 1},
	}
	a, err := sound.NewAnalyzer(sound.Params{Credibility: 0.95, MaxSamples: 100}, 11)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Explain(c, cp)
	}
}

// Summarize measures the full violation analysis of a result sequence
// with ~19 change points: sequential (workers == 0, the Summarize path)
// or fanned out over the given worker count (SummarizeParallel). The
// outputs are bit-identical; the ratio of the two specs is the Alg. 2
// path's parallel speedup (1 on a single-core host, where the specs also
// bound the engine's coordination overhead).
func Summarize(b *testing.B, workers int) {
	// Alternating regimes of 20 time units: dense satisfied windows
	// (30±2, clearly above threshold) and sparse, more uncertain violated
	// windows (7±3), so every regime boundary is a change point whose
	// E2/E4 what-ifs re-run the Monte-Carlo evaluation.
	var s sound.Series
	for i := 0; i < 400; i++ {
		if (i/20)%2 == 1 {
			if i%3 != 0 {
				continue // sparse violated windows
			}
			s = append(s, sound.Point{T: float64(i), V: 7, SigUp: 3, SigDown: 3})
		} else {
			s = append(s, sound.Point{T: float64(i), V: 30, SigUp: 2, SigDown: 2})
		}
	}
	c := sound.GreaterThan(10)
	c.Granularity = sound.WindowTime
	check := sound.Check{
		Name:        "gt10",
		Constraint:  c,
		SeriesNames: []string{"s"},
		Window:      sound.TimeWindow{Size: 20},
	}
	params := sound.Params{Credibility: 0.95, MaxSamples: 100}
	eval, err := sound.NewEvaluator(params, 5)
	if err != nil {
		b.Fatal(err)
	}
	results, err := check.Run(eval, []sound.Series{s})
	if err != nil {
		b.Fatal(err)
	}
	a, err := sound.NewAnalyzer(params, 9)
	if err != nil {
		b.Fatal(err)
	}
	cps := len(sound.ChangePoints(results))
	if cps < 5 {
		b.Fatalf("workload has only %d change points", cps)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if workers <= 0 {
			_ = sound.Summarize(check, results, a, nil, 0.95)
		} else if _, err := sound.SummarizeParallel(context.Background(), check, results, a, nil, 0.95, workers); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cps), "changepoints")
}

// clearCutSeries returns an uncertain series whose range check is
// clear-cut for every point: the case where adaptive early stopping
// should save nearly all of the sampling budget.
func clearCutSeries(n int) sound.Series {
	s := make(sound.Series, n)
	for i := range s {
		s[i] = sound.Point{T: float64(i), V: 50, SigUp: 2, SigDown: 2}
	}
	return s
}

// AblationEarlyStop compares Alg. 1's adaptive decision rule
// (checkInterval = 1) against a fixed-budget variant that decides only
// after all N samples (checkInterval = N). The samples/window metric
// shows the adaptive rule consuming a fraction of the budget.
func AblationEarlyStop(b *testing.B, checkInterval int) {
	data := clearCutSeries(64)
	check := sound.Check{
		Name:        "range",
		Constraint:  sound.Range(0, 100),
		SeriesNames: []string{"s"},
		Window:      sound.PointWindow{},
	}
	params := sound.Params{Credibility: 0.95, MaxSamples: 100, CheckInterval: checkInterval}
	eval, err := sound.NewEvaluator(params, 1)
	if err != nil {
		b.Fatal(err)
	}
	samples := 0
	windows := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := check.Run(eval, []sound.Series{data})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			samples += r.Samples
			windows++
		}
	}
	b.ReportMetric(float64(samples)/float64(windows), "samples/window")
}

// AblationBlockBootstrap compares the block bootstrap against a naive
// i.i.d. bootstrap for a sequence constraint on autocorrelated data. The
// falseviol/window metric is the rate of spurious violations on a
// genuinely monotone series — the failure mode the block bootstrap
// bounds and E6 controls.
func AblationBlockBootstrap(b *testing.B, block bool) {
	n := 64
	data := make(sound.Series, n)
	for i := range data {
		data[i] = sound.Point{T: float64(i), V: float64(i) * 10, SigUp: 0.01, SigDown: 0.01}
	}
	constraint := sound.MonotonicIncrease(false) // sequence constraint: block bootstrap
	if !block {
		constraint.Orderedness = sound.Set // forces the i.i.d. bootstrap strategy
	}
	check := sound.Check{
		Name:        "mono",
		Constraint:  constraint,
		SeriesNames: []string{"s"},
		Window:      sound.CountWindow{Size: 16},
	}
	eval, err := sound.NewEvaluator(sound.Params{Credibility: 0.95, MaxSamples: 100}, 2)
	if err != nil {
		b.Fatal(err)
	}
	falseViol, windows := 0, 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := check.Run(eval, []sound.Series{data})
		if err != nil {
			b.Fatal(err)
		}
		results = sound.ControlE6(constraint, results)
		for _, r := range results {
			windows++
			if r.Outcome == sound.Violated {
				falseViol++
			}
		}
	}
	b.ReportMetric(float64(falseViol)/float64(windows), "falseviol/window")
}

// AblationDecisionRule compares the credible-interval decision rule
// against an aggressive near-point-estimate rule (c = 0.05) on a
// borderline window. The falseconcl/window metric counts conclusions
// drawn on data that only supports ⊣.
func AblationDecisionRule(b *testing.B, credibility float64) {
	borderline := sound.Series{{T: 0, V: 10, SigUp: 5, SigDown: 5}}
	check := sound.Check{
		Name:        "gt",
		Constraint:  sound.GreaterThan(10),
		SeriesNames: []string{"s"},
		Window:      sound.PointWindow{},
	}
	eval, err := sound.NewEvaluator(sound.Params{Credibility: credibility, MaxSamples: 100}, 3)
	if err != nil {
		b.Fatal(err)
	}
	falseConcl, windows := 0, 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := check.Run(eval, []sound.Series{borderline})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			windows++
			if r.Outcome != sound.Inconclusive {
				falseConcl++
			}
		}
	}
	b.ReportMetric(float64(falseConcl)/float64(windows), "falseconcl/window")
}

// wireEvents builds the canonical decode workload: nEvents certain
// points cycling over 8 series keys — the same key fan the
// StreamThroughput specs use.
func wireEvents(n int) []stream.Event {
	keys := [8]string{"h0", "h1", "h2", "h3", "h4", "h5", "h6", "h7"}
	evs := make([]stream.Event, n)
	for i := range evs {
		evs[i] = stream.Event{Time: float64(i / 8), Key: keys[i%8], Value: 50 + float64(i%7), SigUp: 0.5, SigDown: 0.25}
	}
	return evs
}

// DecodeFrame prices the binary frame decode path: pre-encoded frames
// decoded by one warm decoder, zero allocations per event in steady
// state (the wire contract — a regression here costs GC pressure on
// every ingest byte the server ever sees).
func DecodeFrame(b *testing.B) {
	const nEvents = 1 << 13
	evs := wireEvents(nEvents)
	var data []byte
	var err error
	for off := 0; off < nEvents; off += 256 {
		if data, err = wire.AppendFrame(data, evs[off:off+256]); err != nil {
			b.Fatal(err)
		}
	}
	r := bytes.NewReader(data)
	dec := wire.NewFrameDecoder(r)
	decodeAll := func() {
		r.Reset(data)
		dec.Reset(r)
		n := 0
		for {
			fr, err := dec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n += len(fr)
		}
		if n != nEvents {
			b.Fatalf("decoded %d events, want %d", n, nEvents)
		}
	}
	decodeAll() // warm the intern table and buffers
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decodeAll()
	}
	b.ReportMetric(float64(b.N)*nEvents/b.Elapsed().Seconds(), "points/sec")
}

// DecodeNDJSON prices the hand-rolled NDJSON fast path on well-formed
// lines (the steady state of HTTP ingest): no encoding/json, zero
// allocations per event.
func DecodeNDJSON(b *testing.B) {
	const nEvents = 1 << 13
	var data []byte
	for _, ev := range wireEvents(nEvents) {
		data = wire.AppendNDJSON(data, ev)
	}
	r := bytes.NewReader(data)
	dec := wire.NewNDJSONDecoder(r)
	decodeAll := func() {
		r.Reset(data)
		dec.Reset(r)
		n := 0
		for {
			_, err := dec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != nEvents {
			b.Fatalf("decoded %d events, want %d", n, nEvents)
		}
	}
	decodeAll()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decodeAll()
	}
	b.ReportMetric(float64(b.N)*nEvents/b.Elapsed().Seconds(), "points/sec")
}

// DecodeCSV prices the streaming CSV scanner soundcheck -stream reads
// files through — the replacement for the O(file) slurp.
func DecodeCSV(b *testing.B) {
	const nPoints = 1 << 13
	var buf bytes.Buffer
	for i := 0; i < nPoints; i++ {
		fmt.Fprintf(&buf, "%d,%g,0.5,0.25\n", i, 50+float64(i%7))
	}
	data := buf.Bytes()
	r := bytes.NewReader(data)
	sc := wire.NewCSVScanner(r)
	scanAll := func() {
		r.Reset(data)
		sc.Reset(r)
		n := 0
		for {
			_, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != nPoints {
			b.Fatalf("scanned %d points, want %d", n, nPoints)
		}
	}
	scanAll()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scanAll()
	}
	b.ReportMetric(float64(b.N)*nPoints/b.Elapsed().Seconds(), "points/sec")
}

// IngestLoopback prices the full wire→verdict path of the always-on
// server: pre-encoded binary frames written to a real loopback TCP
// connection, four shard pipelines running the same cheap tumbling
// range check as StreamThroughput, measured to the point where every
// event has cleared its shard chain. The points/sec metric is directly
// comparable to StreamThroughput/batch64 — the gap is the price of the
// wire (decode + fan-in + lane hop).
func IngestLoopback(b *testing.B) {
	const nEvents = 1 << 14
	evs := wireEvents(nEvents)
	var data []byte
	var err error
	for off := 0; off < nEvents; off += 256 {
		if data, err = wire.AppendFrame(data, evs[off:off+256]); err != nil {
			b.Fatal(err)
		}
	}
	srv, err := ingest.NewServer(ingest.Config{
		Shards:    4,
		BatchSize: 64,
		Checks: []ingest.CheckConfig{{
			Name: "range",
			Check: core.Check{
				Name:        "range",
				Constraint:  core.Range(0, 100),
				SeriesNames: []string{"s"},
				Window:      sound.TimeWindow{Size: 60},
			},
			Params: core.Params{Credibility: 0.95, MaxSamples: 100},
			Seed:   7,
		}},
	})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.ServeTCP(ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	consumed := func() int64 { return srv.Stats().Consumed }
	send := func() {
		target := consumed() + nEvents
		if _, err := conn.Write(data); err != nil {
			b.Fatal(err)
		}
		for consumed() < target {
			time.Sleep(20 * time.Microsecond)
		}
	}
	send() // warm pools, interns, and the TCP path
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send()
	}
	b.ReportMetric(float64(b.N)*nEvents/b.Elapsed().Seconds(), "points/sec")
	b.StopTimer()
	conn.Close()
	if err := srv.Drain(); err != nil {
		b.Fatal(err)
	}
}
