package resample

import (
	"math"
	"testing"
	"testing/quick"

	"sound/internal/rng"
	"sound/internal/series"
	"sound/internal/stat"
)

func uncertainSeries(n int, seed uint64) series.Series {
	r := rng.New(seed)
	s := make(series.Series, n)
	for i := range s {
		s[i] = series.Point{
			T:       float64(i),
			V:       10 + r.NormFloat64(),
			SigUp:   0.5 + r.Float64(),
			SigDown: 0.5 + r.Float64(),
		}
	}
	return s
}

func TestPerturbValueCertainPointUnaltered(t *testing.T) {
	r := rng.New(1)
	p := series.Point{T: 0, V: 42}
	for i := 0; i < 100; i++ {
		if got := PerturbValue(p, r); got != 42 {
			t.Fatalf("certain point perturbed to %v", got)
		}
	}
}

func TestPerturbValueDirections(t *testing.T) {
	r := rng.New(2)
	p := series.Point{V: 0, SigUp: 1, SigDown: 2}
	up, down := 0, 0
	var sumUp, sumDown float64
	const n = 50000
	for i := 0; i < n; i++ {
		v := PerturbValue(p, r)
		if v > 0 {
			up++
			sumUp += v
		} else if v < 0 {
			down++
			sumDown += v
		}
	}
	// Split-normal branch weights: P(up) = σ↑/(σ↑+σ↓) = 1/3.
	if math.Abs(float64(up)/n-1.0/3.0) > 0.02 {
		t.Errorf("upward fraction = %v, want ~1/3", float64(up)/n)
	}
	// |half-normal| mean is σ·√(2/π).
	hn := math.Sqrt(2 / math.Pi)
	if got := sumUp / float64(up); math.Abs(got-1*hn) > 0.03 {
		t.Errorf("mean upward excursion = %v, want %v", got, hn)
	}
	if got := sumDown / float64(down); math.Abs(got+2*hn) > 0.05 {
		t.Errorf("mean downward excursion = %v, want %v", got, -2*hn)
	}
}

func TestPerturbValueSymmetricBranchesEven(t *testing.T) {
	r := rng.New(21)
	p := series.Point{V: 0, SigUp: 1.5, SigDown: 1.5}
	up := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if PerturbValue(p, r) > 0 {
			up++
		}
	}
	if math.Abs(float64(up)/n-0.5) > 0.02 {
		t.Errorf("symmetric point upward fraction = %v", float64(up)/n)
	}
}

func TestBlockSize(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {2, 2}, {4, 2}, {5, 3}, {9, 3}, {10, 4}, {100, 10}, {101, 11},
	}
	for _, c := range cases {
		if got := BlockSize(c.n); got != c.want {
			t.Errorf("BlockSize(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestForConstraint(t *testing.T) {
	if ForConstraint(true, true) != Point {
		t.Error("point-wise should map to Point")
	}
	if ForConstraint(false, true) != Sequence {
		t.Error("ordered windowed should map to Sequence")
	}
	if ForConstraint(false, false) != Set {
		t.Error("unordered windowed should map to Set")
	}
}

func TestStrategyString(t *testing.T) {
	if Point.String() != "point" || Set.String() != "set" || Sequence.String() != "sequence" {
		t.Error("bad Strategy strings")
	}
	if Strategy(99).String() != "unknown" {
		t.Error("unknown strategy string")
	}
}

func TestDrawPointPreservesLengthAndCenter(t *testing.T) {
	s := uncertainSeries(200, 3)
	rs := New(Point, rng.New(4))
	const draws = 500
	sums := make([]float64, len(s))
	for d := 0; d < draws; d++ {
		vals := rs.Draw([]series.Series{s})
		if len(vals) != 1 || len(vals[0]) != len(s) {
			t.Fatalf("draw shape = %d x %d", len(vals), len(vals[0]))
		}
		for i, v := range vals[0] {
			sums[i] += v
		}
	}
	// Mean perturbed value stays near the point value up to the
	// split-normal bias √(2/π)·(σ↑²−σ↓²)/(σ↑+σ↓).
	hn := math.Sqrt(2 / math.Pi)
	for i, p := range s {
		mean := sums[i] / draws
		want := p.V + hn*(p.SigUp*p.SigUp-p.SigDown*p.SigDown)/(p.SigUp+p.SigDown)
		if math.Abs(mean-want) > 0.35 {
			t.Errorf("point %d: mean %v, want ~%v", i, mean, want)
		}
	}
}

func TestDrawSetMultisetMembership(t *testing.T) {
	// Property: with zero uncertainty, every drawn value is an original
	// value (bootstrap = sampling with replacement).
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		s := series.FromValues(vals...)
		rs := New(Set, rng.New(5))
		out := rs.Draw([]series.Series{s})[0]
		if len(out) != len(s) {
			return false
		}
		set := map[float64]bool{}
		for _, v := range vals {
			set[v] = true
		}
		for _, v := range out {
			if !set[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDrawSetAlignmentAcrossK(t *testing.T) {
	// Two aligned certain series: y = 2x. After an aligned set draw the
	// relation must persist element-wise.
	n := 50
	x := make(series.Series, n)
	y := make(series.Series, n)
	for i := 0; i < n; i++ {
		x[i] = series.Point{T: float64(i), V: float64(i)}
		y[i] = series.Point{T: float64(i), V: float64(2 * i)}
	}
	rs := New(Set, rng.New(6))
	for d := 0; d < 100; d++ {
		out := rs.Draw([]series.Series{x, y})
		for i := range out[0] {
			if out[1][i] != 2*out[0][i] {
				t.Fatalf("alignment broken at draw %d index %d: %v vs %v", d, i, out[0][i], out[1][i])
			}
		}
	}
}

func TestDrawSequenceAlignmentAcrossK(t *testing.T) {
	n := 60
	x := make(series.Series, n)
	y := make(series.Series, n)
	for i := 0; i < n; i++ {
		x[i] = series.Point{T: float64(i), V: float64(i)}
		y[i] = series.Point{T: float64(i), V: float64(i) + 100}
	}
	rs := New(Sequence, rng.New(7))
	for d := 0; d < 100; d++ {
		out := rs.Draw([]series.Series{x, y})
		for i := range out[0] {
			if out[1][i] != out[0][i]+100 {
				t.Fatalf("sequence alignment broken at index %d", i)
			}
		}
	}
}

func TestDrawSequencePreservesBlockOrder(t *testing.T) {
	// With certain data, every block of size b in the output must be a
	// contiguous ascending run from the ramp input.
	n := 100
	s := make(series.Series, n)
	for i := range s {
		s[i] = series.Point{T: float64(i), V: float64(i)}
	}
	rs := New(Sequence, rng.New(8))
	b := BlockSize(n)
	for d := 0; d < 50; d++ {
		out := rs.Draw([]series.Series{s})[0]
		for start := 0; start < n; start += b {
			end := start + b
			if end > n {
				end = n
			}
			for i := start + 1; i < end; i++ {
				if out[i] != out[i-1]+1 {
					t.Fatalf("draw %d: block [%d,%d) not contiguous: %v -> %v", d, start, end, out[i-1], out[i])
				}
			}
		}
	}
}

func TestDrawSequenceCoversWholeRange(t *testing.T) {
	// Over many draws every index should be sampled sometimes.
	n := 30
	s := make(series.Series, n)
	for i := range s {
		s[i] = series.Point{T: float64(i), V: float64(i)}
	}
	rs := New(Sequence, rng.New(9))
	seen := make([]bool, n)
	for d := 0; d < 500; d++ {
		for _, v := range rs.Draw([]series.Series{s})[0] {
			seen[int(v)] = true
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Errorf("index %d never sampled by block bootstrap", i)
		}
	}
}

func TestDrawUnequalLengthsIndependent(t *testing.T) {
	x := series.FromValues(1, 2, 3)
	y := series.FromValues(10, 20, 30, 40, 50)
	rs := New(Set, rng.New(10))
	out := rs.Draw([]series.Series{x, y})
	if len(out[0]) != 3 || len(out[1]) != 5 {
		t.Fatalf("lengths = %d, %d", len(out[0]), len(out[1]))
	}
}

func TestDrawEmptyWindow(t *testing.T) {
	rs := New(Set, rng.New(11))
	out := rs.Draw([]series.Series{{}})
	if len(out[0]) != 0 {
		t.Fatalf("empty window drew %d values", len(out[0]))
	}
	rs2 := New(Sequence, rng.New(11))
	if got := rs2.Draw([]series.Series{{}}); len(got[0]) != 0 {
		t.Fatal("sequence draw of empty window")
	}
}

func TestBootstrapEstimatesMeanSamplingDistribution(t *testing.T) {
	// The bootstrap distribution of the sample mean should have standard
	// deviation ≈ σ/√n (the standard error), the property SOUND uses to
	// propagate sparsity-induced uncertainty.
	r := rng.New(12)
	n := 40
	s := make(series.Series, n)
	for i := range s {
		s[i] = series.Point{T: float64(i), V: r.NormFloat64() * 3}
	}
	trueSD := stat.StdDev(s.Values())
	rs := New(Set, rng.New(13))
	const draws = 4000
	means := make([]float64, draws)
	for d := 0; d < draws; d++ {
		means[d] = stat.Mean(rs.Draw([]series.Series{s})[0])
	}
	se := stat.StdDev(means)
	want := trueSD / math.Sqrt(float64(n))
	if math.Abs(se-want) > 0.15*want {
		t.Errorf("bootstrap SE = %v, want ~%v", se, want)
	}
}

func TestBlocks(t *testing.T) {
	s := series.FromValues(0, 1, 2, 3, 4, 5, 6, 7, 8, 9) // n=10, b=4
	blocks := Blocks(s)
	if len(blocks) != 3 {
		t.Fatalf("got %d blocks", len(blocks))
	}
	if len(blocks[0]) != 4 || len(blocks[1]) != 4 || len(blocks[2]) != 2 {
		t.Errorf("block sizes = %d,%d,%d", len(blocks[0]), len(blocks[1]), len(blocks[2]))
	}
	total := 0
	for _, b := range blocks {
		total += len(b)
	}
	if total != len(s) {
		t.Errorf("blocks cover %d of %d points", total, len(s))
	}
	if Blocks(series.Series{}) != nil {
		t.Error("empty series should give nil blocks")
	}
}

func TestDrawDeterministicWithSeed(t *testing.T) {
	s := uncertainSeries(50, 20)
	a := New(Sequence, rng.New(42))
	b := New(Sequence, rng.New(42))
	for d := 0; d < 20; d++ {
		va := a.Draw([]series.Series{s})[0]
		vb := b.Draw([]series.Series{s})[0]
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("draw %d diverged at %d", d, i)
			}
		}
	}
}

func BenchmarkDrawPoint(b *testing.B) {
	s := uncertainSeries(100, 1)
	rs := New(Point, rng.New(1))
	w := []series.Series{s}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Draw(w)
	}
}

func BenchmarkDrawSequence(b *testing.B) {
	s := uncertainSeries(100, 1)
	rs := New(Sequence, rng.New(1))
	w := []series.Series{s, s}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Draw(w)
	}
}

func TestSetBlockSizeOverride(t *testing.T) {
	n := 100
	s := make(series.Series, n)
	for i := range s {
		s[i] = series.Point{T: float64(i), V: float64(i)}
	}
	rs := New(Sequence, rng.New(31))
	rs.SetBlockSize(25)
	for d := 0; d < 20; d++ {
		out := rs.Draw([]series.Series{s})[0]
		for start := 0; start < n; start += 25 {
			for i := start + 1; i < start+25 && i < n; i++ {
				if out[i] != out[i-1]+1 {
					t.Fatalf("block [%d..) not contiguous with size 25", start)
				}
			}
		}
	}
	rs.SetBlockSize(-3) // restores automatic sizing without panicking
	rs.Draw([]series.Series{s})
}

func TestAutoBlockSize(t *testing.T) {
	// White noise: the √n default applies.
	r := rng.New(33)
	white := make([]float64, 100)
	for i := range white {
		white[i] = r.NormFloat64()
	}
	if got := AutoBlockSize(white); got != BlockSize(100) {
		t.Errorf("white-noise auto block = %d, want %d", got, BlockSize(100))
	}
	// Strongly autocorrelated data: blocks must grow beyond √n.
	ar := make([]float64, 400)
	for i := 1; i < len(ar); i++ {
		ar[i] = 0.97*ar[i-1] + r.NormFloat64()
	}
	if got := AutoBlockSize(ar); got <= BlockSize(400) {
		t.Errorf("AR(0.97) auto block = %d, want > %d", got, BlockSize(400))
	}
	if got := AutoBlockSize([]float64{1}); got != 1 {
		t.Errorf("singleton auto block = %d", got)
	}
	// Never exceeds n.
	if got := AutoBlockSize(ar[:10]); got > 10 {
		t.Errorf("auto block %d exceeds n", got)
	}
}
