package resample

import (
	"fmt"

	"sound/internal/checkpoint"
	"sound/internal/rng"
)

// This file is the resampling layer's half of the deterministic state
// lifecycle (DESIGN.md §4i): the two pieces of resampler state that a
// bit-identical restore must carry across a process boundary are the
// random-stream position and the extraction magnitude accumulators.
// Everything else a Resampler holds is derived scratch that the next
// Prime/Draw rebuilds identically.

// State returns the resampler's random-stream position. Rewind restores
// it; together they form the export/restore pair for checkpointing.
func (rs *Resampler) State() rng.State { return rs.r.State() }

// EncodeTo serializes the extraction. The SoA arrays (values, directional
// uncertainties, class tags) are written in full, and the magnitude
// accumulators are written as exact float bits: TrimFront deliberately
// keeps accV/accS as loose upper bounds rather than re-tightening them,
// so they are NOT reconstructible from the surviving points — a restore
// that re-extracted would classify Safe() differently from the run it
// resumes. The run list and class-mix bitmask, by contrast, are pure
// functions of the tags and are rebuilt on decode.
func (x *Extraction) EncodeTo(enc *checkpoint.Encoder) {
	enc.F64s(x.Vals)
	enc.F64s(x.SigUp)
	enc.F64s(x.SigDown)
	tags := make([]byte, len(x.Tags))
	for i, t := range x.Tags {
		tags[i] = byte(t)
	}
	enc.Bytes(tags)
	enc.F64(x.accV)
	enc.F64(x.accS)
}

// DecodeFrom restores the extraction from its encoded form, rebuilding
// the run list and class bitmask from the tags and adopting the encoded
// magnitude accumulators verbatim.
func (x *Extraction) DecodeFrom(dec *checkpoint.Decoder) error {
	x.Vals = dec.F64s(x.Vals)
	x.SigUp = dec.F64s(x.SigUp)
	x.SigDown = dec.F64s(x.SigDown)
	tags := dec.Bytes()
	accV, accS := dec.F64(), dec.F64()
	if err := dec.Err(); err != nil {
		return err
	}
	n := len(x.Vals)
	if len(x.SigUp) != n || len(x.SigDown) != n || len(tags) != n {
		return fmt.Errorf("resample: extraction arrays misaligned (%d/%d/%d/%d)",
			n, len(x.SigUp), len(x.SigDown), len(tags))
	}
	x.Tags = x.Tags[:0]
	x.runs = x.runs[:0]
	seen := uint8(0)
	for i, b := range tags {
		if b > byte(ClassAsymmetric) {
			return fmt.Errorf("resample: unknown point class %d", b)
		}
		t := Class(b)
		x.Tags = append(x.Tags, t)
		seen |= 1 << t
		if m := len(x.runs); m > 0 && x.runs[m-1].Class == t {
			x.runs[m-1].Hi = i + 1
			continue
		}
		x.runs = append(x.runs, classRun{Lo: i, Hi: i + 1, Class: t})
	}
	x.seen = seen
	x.accV, x.accS = accV, accS
	return nil
}
