package resample

import (
	"testing"

	"sound/internal/rng"
	"sound/internal/series"
)

// These tests pin the bit-parity contract of the compiled kernels (see
// the package comment in kernel.go): for identical RNG state, the batched
// per-class kernels draw exactly the sequence the scalar PerturbValue
// path draws — same values, same randomness consumed — for every
// strategy, every point-class mix, and views at any offset into a shared
// extraction. The scalar reference is the unprimed resampler, whose Draw
// falls back to PerturbValue per point (for Point) and per gathered index
// (for Set and Sequence).

// classPoint materializes one point of the requested class shape:
// 0 certain (σ↑ = σ↓ = 0), 1 symmetric (σ↑ = σ↓ ≠ 0), 2 fully
// asymmetric, 3 asymmetric with σ↑ = 0, 4 asymmetric with σ↓ = 0.
func classPoint(t float64, shape byte, mag float64) series.Point {
	p := series.Point{T: t, V: mag*7 - 3}
	switch shape % 5 {
	case 1:
		p.SigUp, p.SigDown = mag+0.5, mag+0.5
	case 2:
		p.SigUp, p.SigDown = mag+0.25, 2*mag+1
	case 3:
		p.SigUp, p.SigDown = 0, mag+1
	case 4:
		p.SigUp, p.SigDown = mag+1, 0
	}
	return p
}

// windowFromBytes decodes a fuzz payload into a window: two bytes per
// point (class shape, magnitude).
func windowFromBytes(data []byte) series.Series {
	w := make(series.Series, 0, len(data)/2)
	for i := 0; i+1 < len(data); i += 2 {
		w = append(w, classPoint(float64(i/2), data[i], float64(data[i+1])/16))
	}
	return w
}

// checkDrawParity drives a kernel-primed resampler and a scalar fallback
// resampler from the same seed over the same windows and requires
// bit-identical draws throughout, then proves the RNG states finished
// identical by probing both with a draw on a fresh uncertainty-heavy
// window (any skew in consumed randomness would desynchronize it).
func checkDrawParity(t *testing.T, strat Strategy, seed uint64, windows []series.Series, views []View, draws int) {
	t.Helper()
	kernel := New(strat, rng.New(seed))
	scalar := New(strat, rng.New(seed))
	if views != nil {
		kernel.PrimeViews(windows, views)
	} else {
		kernel.Prime(windows)
	}
	for d := 0; d < draws; d++ {
		got := kernel.Draw(windows)
		want := scalar.Draw(windows)
		for wi := range want {
			if len(got[wi]) != len(want[wi]) {
				t.Fatalf("%v draw %d window %d: len %d, want %d", strat, d, wi, len(got[wi]), len(want[wi]))
			}
			for i := range want[wi] {
				if got[wi][i] != want[wi][i] {
					t.Fatalf("%v draw %d window %d point %d: kernel %v, scalar %v",
						strat, d, wi, i, got[wi][i], want[wi][i])
				}
			}
		}
	}
	probe := []series.Series{{
		{T: 0, V: 1, SigUp: 1, SigDown: 3},
		{T: 1, V: 2, SigUp: 2, SigDown: 2},
		{T: 2, V: 3, SigUp: 0.5, SigDown: 0},
	}}
	a, b := kernel.Draw(probe), scalar.Draw(probe)
	for i := range b[0] {
		if a[0][i] != b[0][i] {
			t.Fatalf("%v: RNG state diverged after parity draws (probe point %d: %v vs %v)",
				strat, i, a[0][i], b[0][i])
		}
	}
}

// TestKernelScalarParityRandomized is the property test: random windows
// spanning all class shapes — including σ↑ = σ↓ and σ = 0 points mixed
// in one window — and lengths covering the scalar small-window path, the
// run-dispatched kernels, and the single-point fast path, for all three
// strategies.
func TestKernelScalarParityRandomized(t *testing.T) {
	gen := rng.New(0xC0FFEE)
	for iter := 0; iter < 60; iter++ {
		n := 1 + gen.Intn(40)
		w := make(series.Series, n)
		for i := range w {
			w[i] = classPoint(float64(i), byte(gen.Intn(5)), float64(gen.Intn(64))/16)
		}
		seed := gen.Uint64()
		for _, strat := range []Strategy{Point, Set, Sequence} {
			checkDrawParity(t, strat, seed, []series.Series{w}, nil, 25)
		}
	}
}

// TestKernelScalarParityMixedClasses pins the exact mixes the bit-parity
// argument calls out: certain, symmetric (σ↑ = σ↓), and asymmetric
// points — including zero-σ directions — in one window.
func TestKernelScalarParityMixedClasses(t *testing.T) {
	w := series.Series{
		{T: 0, V: 5},                        // certain (σ = 0)
		{T: 1, V: 10, SigUp: 2, SigDown: 2}, // symmetric σ↑ = σ↓
		{T: 2, V: -3, SigUp: 1, SigDown: 4}, // asymmetric
		{T: 3, V: 7, SigUp: 0, SigDown: 2},  // asymmetric, σ↑ = 0
		{T: 4, V: 1, SigUp: 3, SigDown: 0},  // asymmetric, σ↓ = 0
		{T: 5, V: 0},                        // certain again (new run)
		{T: 6, V: 2, SigUp: 0.5, SigDown: 0.5},
		{T: 7, V: 2, SigUp: 0.5, SigDown: 0.5},
		{T: 8, V: 2, SigUp: 0.5, SigDown: 0.5}, // symmetric run ≥ 3
	}
	for _, strat := range []Strategy{Point, Set, Sequence} {
		checkDrawParity(t, strat, 42, []series.Series{w}, nil, 100)
	}
}

// TestKernelScalarParityViews proves parity holds for views at arbitrary
// offsets into a shared extraction — the window-overlap path the batch
// and stream executors use.
func TestKernelScalarParityViews(t *testing.T) {
	gen := rng.New(7)
	backing := make(series.Series, 64)
	for i := range backing {
		backing[i] = classPoint(float64(i), byte(gen.Intn(5)), float64(gen.Intn(64))/16)
	}
	var x Extraction
	x.Extract(backing)
	for _, span := range [][2]int{{0, 64}, {3, 4}, {10, 13}, {17, 42}, {63, 64}, {5, 30}} {
		lo, hi := span[0], span[1]
		w := backing[lo:hi]
		views := []View{x.Slice(lo, hi)}
		for _, strat := range []Strategy{Point, Set, Sequence} {
			checkDrawParity(t, strat, uint64(lo*100+hi), []series.Series{w}, views, 40)
		}
	}
}

// TestKernelScalarParityKAry covers aligned k-ary draws through views of
// distinct extractions.
func TestKernelScalarParityKAry(t *testing.T) {
	gen := rng.New(99)
	mk := func() series.Series {
		w := make(series.Series, 24)
		for i := range w {
			w[i] = classPoint(float64(i), byte(gen.Intn(5)), float64(gen.Intn(64))/16)
		}
		return w
	}
	w1, w2 := mk(), mk()
	var x1, x2 Extraction
	x1.Extract(w1)
	x2.Extract(w2)
	windows := []series.Series{w1[4:20], w2[8:24]}
	views := []View{x1.Slice(4, 20), x2.Slice(8, 24)}
	for _, strat := range []Strategy{Point, Set, Sequence} {
		checkDrawParity(t, strat, 1234, windows, views, 40)
	}
}

// FuzzKernelScalarParity fuzzes the parity property directly: any class
// mix the payload encodes must draw bit-identically through the kernels
// and the scalar path, for every strategy.
func FuzzKernelScalarParity(f *testing.F) {
	f.Add(uint64(1), []byte{0, 8, 1, 8, 2, 8})           // one point of each class
	f.Add(uint64(2), []byte{1, 16, 1, 16, 1, 16, 1, 16}) // all symmetric, σ↑ = σ↓
	f.Add(uint64(3), []byte{0, 1, 0, 2, 0, 3})           // all certain (σ = 0)
	f.Add(uint64(4), []byte{3, 9, 4, 9, 2, 0})           // zero-σ directions
	f.Add(uint64(5), []byte{1, 255})                     // single uncertain point
	f.Fuzz(func(t *testing.T, seed uint64, data []byte) {
		if len(data) > 256 {
			data = data[:256]
		}
		w := windowFromBytes(data)
		if len(w) == 0 {
			return
		}
		for _, strat := range []Strategy{Point, Set, Sequence} {
			checkDrawParity(t, strat, seed, []series.Series{w}, nil, 8)
		}
	})
}
