// Package resample implements the resampling strategies of SOUND's
// constraint evaluation (paper §IV-B). Resampling is not a performance
// device: it materializes the implicit variability of a window under the
// two modelled data-quality issues so that the constraint function can be
// evaluated on plausible alternative realizations.
//
// Three strategies correspond to the constraint taxonomy:
//
//   - Point: per-point Monte-Carlo perturbation with the asymmetric normal
//     uncertainty model — used for point-wise checks.
//   - Set: i.i.d. bootstrap (sampling points with replacement) layered with
//     the point perturbation — used for window-based set checks, where the
//     bootstrap propagates the sampling uncertainty of sparse windows.
//   - Sequence: block bootstrap with block size b = ⌈√n⌉ — used for
//     window-based sequence checks, preserving short-range ordering
//     within blocks.
//
// For k-ary checks the same random block/point indices are used across all
// k windows so that the series remain aligned (paper §IV-B).
package resample

import (
	"math"

	"sound/internal/rng"
	"sound/internal/series"
	"sound/internal/stat"
)

// Strategy selects how a window is resampled.
type Strategy int

const (
	// Point perturbs each point's value with its uncertainty model.
	Point Strategy = iota
	// Set draws points i.i.d. with replacement, then perturbs values.
	Set
	// Sequence draws contiguous blocks with replacement, then perturbs.
	Sequence
)

func (s Strategy) String() string {
	switch s {
	case Point:
		return "point"
	case Set:
		return "set"
	case Sequence:
		return "sequence"
	}
	return "unknown"
}

// PerturbValue draws one realization of a point's value under the
// asymmetric (split) normal uncertainty model: the value is shifted
// upward by |N(0, σ↑)| with probability σ↑/(σ↑+σ↓) and downward by
// |N(0, σ↓)| otherwise. The branch weighting makes the two half-normal
// pieces join into a continuous split-normal density, so the side with
// the larger standard deviation carries proportionally more probability
// mass — exactly the semantics of an asymmetric error bar (a point just
// above a threshold with a large downward error is *likely* below it,
// paper Fig. 1). A certain point (σ↑ = σ↓ = 0) is returned unaltered.
//
// A symmetric point (σ↑ = σ↓ = σ) short-circuits to v + σ·N(0,1), which
// is the same distribution — a fair branch coin on two mirrored
// half-normals is a plain normal — with one random draw instead of two.
func PerturbValue(p series.Point, r *rng.Rand) float64 {
	if p.Certain() {
		return p.V
	}
	if p.SigUp == p.SigDown {
		return p.V + r.NormFloat64()*p.SigUp
	}
	if r.Float64()*(p.SigUp+p.SigDown) < p.SigUp {
		return p.V + math.Abs(r.NormFloat64())*p.SigUp
	}
	return p.V - math.Abs(r.NormFloat64())*p.SigDown
}

// BlockSize returns the automatic block-bootstrap block size b = ⌈√n⌉
// (paper §IV-B), at least 1.
func BlockSize(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Sqrt(float64(n))))
}

// AutoBlockSize returns a data-driven block size for a sequence window:
// the larger of the ⌈√n⌉ default and the series' decorrelation length
// (the lag at which the sample autocorrelation falls inside the 95%
// white-noise band), clamped to n. Blocks must span the dependence range
// of the data or the bootstrap destroys exactly the structure a sequence
// constraint checks.
func AutoBlockSize(vals []float64) int {
	n := len(vals)
	if n <= 1 {
		return 1
	}
	b := BlockSize(n)
	if d := stat.DecorrelationLength(vals, n/2); d > b {
		b = d
	}
	if b > n {
		b = n
	}
	return b
}

// Resampler draws aligned resamples of k windows. Buffers are reused
// across draws, so the returned slices are only valid until the next call.
// A Resampler is not safe for concurrent use.
type Resampler struct {
	strategy  Strategy
	r         *rng.Rand
	blockSize int          // 0 = automatic b = ⌈√n⌉
	buf       [][]float64  // per-window value buffers, reused
	idx       []int        // shared index buffer for set/sequence draws
	meta      []winMeta    // per-window metadata primed for repeated draws
	own       []Extraction // owned extractions for windows primed from raw points
	norm      []float64    // normal-variate scratch for the batched kernels
	starts    []int        // block-start scratch for the sequence bootstrap
	spans     [][]float64  // per-window value/sigma span scratch for block draws
	// autoN/autoB memoize the automatic ⌈√n⌉ block size: Alg. 1 redraws
	// the same window length up to MaxSamples times per evaluation, and
	// the sqrt otherwise lands on every sample.
	autoN, autoB int
}

// winMeta binds window slot wi to its SoA extraction view for a run of
// Draw calls, plus the view's class mix (precomputed once so every draw
// dispatches straight to the right kernel). The (ptr, n) pair identifies
// the window slice the metadata was computed from; Draw only trusts it
// for an identical slice, so stale metadata can never be applied to
// different data that happens to occupy a reused buffer.
type winMeta struct {
	ptr                         *series.Point
	n                           int
	view                        View
	hasCertain, hasSym, hasAsym bool
}

// New returns a Resampler with the given strategy and random source.
func New(strategy Strategy, r *rng.Rand) *Resampler {
	return &Resampler{strategy: strategy, r: r}
}

// Strategy returns the resampling strategy.
func (rs *Resampler) Strategy() Strategy { return rs.strategy }

// SetBlockSize overrides the block-bootstrap block size; 0 restores the
// automatic b = ⌈√n⌉ rule.
func (rs *Resampler) SetBlockSize(b int) {
	if b < 0 {
		b = 0
	}
	rs.blockSize = b
}

// Reseed re-derives the resampler's random stream from parent, leaving
// it exactly as if freshly created with New(strategy, parent.Split())
// while keeping all allocated buffers. It advances parent.
func (rs *Resampler) Reseed(parent *rng.Rand) {
	parent.SplitInto(rs.r)
}

// Prime precomputes per-window metadata for a run of Draw calls over the
// same windows (Alg. 1 draws the same tuple up to N times): certainty
// flags, extracted values, and split-normal branch weights. Priming is
// optional — Draw verifies slice identity and silently falls back to the
// unprimed per-point path when the windows differ — but it turns
// all-certain windows into plain copies and removes a per-point addition
// from every uncertain draw.
func (rs *Resampler) Prime(windows []series.Series) {
	rs.sizeMeta(len(windows))
	for wi, w := range windows {
		rs.primeOwn(wi, w)
	}
}

// PrimeViews primes the resampler from caller-maintained extractions:
// views[wi] is used as the extraction of windows[wi] when it is valid for
// that window's length, skipping the per-window extraction pass
// entirely. Invalid (zero) views fall back to extracting from the raw
// points, so callers can mix shared and unextracted windows freely.
// The caller guarantees a valid view's SoA content matches the window's
// points — stream operators and the violation analyzer maintain that
// invariant incrementally; the (ptr, n) identity guard still protects
// against Draw being handed different windows afterwards.
func (rs *Resampler) PrimeViews(windows []series.Series, views []View) {
	rs.sizeMeta(len(windows))
	for wi, w := range windows {
		if wi < len(views) && views[wi].ValidFor(len(w)) {
			m := &rs.meta[wi]
			m.n = len(w)
			m.ptr = nil
			if len(w) > 0 {
				m.ptr = &w[0]
			}
			m.view = views[wi]
			m.hasCertain, m.hasSym, m.hasAsym = m.view.classes()
			continue
		}
		rs.primeOwn(wi, w)
	}
}

// sizeMeta sizes the metadata slice for k windows.
func (rs *Resampler) sizeMeta(k int) {
	if cap(rs.meta) < k {
		rs.meta = make([]winMeta, k)
	}
	rs.meta = rs.meta[:k]
}

// primeOwn extracts window slot wi into the resampler's own scratch
// extraction, which is reused across Prime calls — an Evaluator walking
// EvaluateAll windows re-extracts into the same buffers every time. The
// owned extractions grow on demand so fully view-primed runs never touch
// them.
func (rs *Resampler) primeOwn(wi int, w series.Series) {
	m := &rs.meta[wi]
	m.n = len(w)
	m.ptr = nil
	if len(w) > 0 {
		m.ptr = &w[0]
	}
	if wi >= len(rs.own) {
		if wi >= cap(rs.own) {
			own := make([]Extraction, wi+1, 2*(wi+1))
			copy(own, rs.own)
			rs.own = own
		}
		rs.own = rs.own[:wi+1]
	}
	x := &rs.own[wi]
	x.Extract(w)
	m.view = x.View()
	m.hasCertain, m.hasSym, m.hasAsym = m.view.classes()
}

// PrimedAllCertain reports whether every window passed to the last Prime
// call is entirely certain — in which case a Point-strategy Draw returns
// the raw values and consumes no randomness, so all draws are identical.
func (rs *Resampler) PrimedAllCertain() bool {
	for i := range rs.meta {
		if rs.meta[i].hasSym || rs.meta[i].hasAsym {
			return false
		}
	}
	return true
}

// primed returns the metadata primed for window slot wi iff it describes
// exactly the slice w.
func (rs *Resampler) primed(wi int, w series.Series) *winMeta {
	if wi >= len(rs.meta) {
		return nil
	}
	m := &rs.meta[wi]
	if m.n != len(w) || (len(w) > 0 && m.ptr != &w[0]) {
		return nil
	}
	return m
}

// ForConstraint maps constraint taxonomy traits to the appropriate
// strategy: point-wise checks use Point; windowed set checks use Set;
// windowed sequence checks use Sequence.
func ForConstraint(pointWise, ordered bool) Strategy {
	switch {
	case pointWise:
		return Point
	case ordered:
		return Sequence
	default:
		return Set
	}
}

// Draw produces one aligned resample of the k windows and returns the k
// value sequences. All windows must have equal length for Set and
// Sequence strategies (k-ary alignment requires shared indices); Draw
// falls back to per-window independent sampling when lengths differ,
// which is the defined behaviour for unary checks with k = 1 anyway.
func (rs *Resampler) Draw(windows []series.Series) [][]float64 {
	k := len(windows)
	// The buffer stores are guarded by length checks: Draw runs once per
	// sample on an unchanged window set, so after the first sample every
	// slot already fits and the loop carries no heap pointer writes (and
	// no write barriers) at all.
	if len(rs.buf) != k {
		if cap(rs.buf) < k {
			rs.buf = make([][]float64, k)
		}
		rs.buf = rs.buf[:k]
	}
	for wi, w := range windows {
		if len(rs.buf[wi]) != len(w) {
			rs.buf[wi] = sliceFor(rs.buf[wi], len(w))
		}
	}
	rs.drawSampleInto(windows, rs.buf)
	return rs.buf
}

// drawSampleInto draws one aligned resample of the windows into the
// per-window destination rows (each already sized to its window), sharing
// the per-sample machinery between Draw and DrawBlock. The randomness
// consumed is exactly that of the scalar strategy loops.
func (rs *Resampler) drawSampleInto(windows []series.Series, out [][]float64) {
	switch rs.strategy {
	case Point:
		for wi, w := range windows {
			if m := rs.primed(wi, w); m != nil {
				rs.drawPoint(m, out[wi])
				continue
			}
			buf := out[wi]
			for i, p := range w {
				buf[i] = PerturbValue(p, rs.r)
			}
		}
	case Set:
		rs.drawIndexedInto(windows, out, false)
	case Sequence:
		rs.drawIndexedInto(windows, out, true)
	}
}

// drawPoint perturbs one window through the compiled kernels. The
// sampling semantics per point are exactly PerturbValue's (certain points
// draw nothing); see kernel.go for the bit-parity argument.
func (rs *Resampler) drawPoint(m *winMeta, buf []float64) {
	if !m.hasSym && !m.hasAsym {
		copy(buf, m.view.X.Vals[m.view.Lo:m.view.Hi])
		return
	}
	if v := m.view; v.Hi-v.Lo == 1 {
		// Point-wise checks land here once per sample: a single uncertain
		// point, perturbed without entering the run-dispatched kernel.
		x, i, r := v.X, v.Lo, rs.r
		if up := x.SigUp[i]; x.Tags[i] == ClassSymmetric {
			buf[0] = x.Vals[i] + up*r.NormFloat64()
		} else {
			down := x.SigDown[i]
			if r.Float64()*(up+down) < up {
				buf[0] = x.Vals[i] + math.Abs(r.NormFloat64())*up
			} else {
				buf[0] = x.Vals[i] - math.Abs(r.NormFloat64())*down
			}
		}
		return
	}
	rs.perturbView(m.view, buf)
}

// drawIndexedInto samples shared indices per alignment group and
// materializes perturbed values. Windows of the same length share one
// index vector so that k aligned series stay aligned; a window with a
// different length gets its own independent index vector.
func (rs *Resampler) drawIndexedInto(windows []series.Series, out [][]float64, seq bool) {
	// Fast path: all windows share a length (the common case for binary
	// index-aligned checks and all unary checks).
	allSame := true
	for _, w := range windows[1:] {
		if len(w) != len(windows[0]) {
			allSame = false
			break
		}
	}
	if allSame {
		n := len(windows[0])
		if seq && n > 0 {
			rs.drawSeqShared(windows, out, n)
			return
		}
		idx := rs.setIndices(n)
		for wi, w := range windows {
			rs.materialize(wi, w, idx, out[wi])
		}
		return
	}
	for wi, w := range windows {
		var idx []int
		if seq {
			idx = rs.blockIndices(len(w))
		} else {
			idx = rs.setIndices(len(w))
		}
		rs.materialize(wi, w, idx, out[wi])
	}
}

// drawSeqShared draws one aligned block-bootstrap sample for equal-length
// windows. The block starts are drawn once (exactly as blockIndices
// draws them); windows whose class mix the run kernel handles are then
// materialized directly from the starts — whole blocks are contiguous
// spans of the extraction, so the gather indirection and the expanded
// index vector disappear — and the rest fall back to the expanded-index
// path. Expansion consumes no randomness, so the choice per window
// cannot shift the stream.
func (rs *Resampler) drawSeqShared(windows []series.Series, out [][]float64, n int) {
	b := rs.seqBlockSize(n)
	nb := (n + b - 1) / b
	rs.starts = intsFor(rs.starts, nb)
	rs.r.IntnFill(rs.starts, n-b+1)
	expanded := false
	for wi, w := range windows {
		if m := rs.primed(wi, w); m != nil && n >= smallWindow &&
			!m.hasAsym && !(m.hasCertain && m.hasSym) {
			rs.materializeSeqRuns(m, rs.starts, b, n, out[wi])
			continue
		}
		if !expanded {
			rs.expandStarts(rs.starts, b, n)
			expanded = true
		}
		rs.materialize(wi, w, rs.idx, out[wi])
	}
}

// materializeSeqRuns fills buf with one block-bootstrap resample of a
// class-homogeneous window (all-certain or all-symmetric), reading each
// drawn block as a contiguous span of the extraction. Stream- and
// float-identical to expanding the starts into indices and gathering:
// the same source element feeds the same output position with the same
// update, and all-symmetric windows consume one normal per position in
// position order, exactly like the gather kernel.
func (rs *Resampler) materializeSeqRuns(m *winMeta, starts []int, b, n int, buf []float64) {
	x := m.view.X
	vals := x.Vals[m.view.Lo:m.view.Hi]
	if !m.hasSym {
		// All-certain: the resample is a concatenation of value spans.
		pos := 0
		for _, start := range starts {
			end := pos + b
			if end > n {
				end = n
			}
			copy(buf[pos:end], vals[start:start+end-pos])
			pos = end
		}
		return
	}
	sig := x.SigUp[m.view.Lo:m.view.Hi]
	z := rs.normScratch(n)
	rs.r.NormFill(z)
	pos := 0
	for _, start := range starts {
		end := pos + b
		if end > n {
			end = n
		}
		l := end - pos
		vs, ss := vals[start:start+l], sig[start:start+l]
		zs, os := z[pos:end][:l], buf[pos:end][:l]
		for i := range os {
			os[i] = vs[i] + ss[i]*zs[i]
		}
		pos = end
	}
}

// materialize fills buf with perturbed values of w at the given indices,
// taking the compiled-kernel path when metadata is primed.
func (rs *Resampler) materialize(wi int, w series.Series, idx []int, buf []float64) {
	m := rs.primed(wi, w)
	if m == nil {
		for i, j := range idx {
			buf[i] = PerturbValue(w[j], rs.r)
		}
		return
	}
	rs.materializeView(m, idx, buf)
}

// setIndices returns n i.i.d. uniform indices in [0, n), drawn through
// the batched IntnFill (stream-identical to n Intn calls).
func (rs *Resampler) setIndices(n int) []int {
	rs.idx = intsFor(rs.idx, n)
	if n > 0 {
		rs.r.IntnFill(rs.idx, n)
	}
	return rs.idx
}

// seqBlockSize resolves the block-bootstrap block size for an n-point
// window: the explicit override if set, else the memoized automatic
// b = ⌈√n⌉, clamped to n.
func (rs *Resampler) seqBlockSize(n int) int {
	b := rs.blockSize
	if b <= 0 {
		if n != rs.autoN {
			rs.autoN, rs.autoB = n, BlockSize(n)
		}
		b = rs.autoB
	}
	if b > n {
		b = n
	}
	return b
}

// expandStarts expands block start offsets into the full index vector
// rs.idx (block i covering positions [i*b, min((i+1)*b, n))), consuming
// no randomness.
func (rs *Resampler) expandStarts(starts []int, b, n int) {
	rs.idx = intsFor(rs.idx, n)
	pos := 0
	for _, start := range starts {
		end := pos + b
		if end > n {
			end = n
		}
		for ; pos < end; pos++ {
			rs.idx[pos] = start
			start++
		}
	}
}

// blockIndices returns n indices formed by concatenating contiguous
// blocks of size b = ⌈√n⌉ whose start offsets are drawn uniformly with
// replacement (moving-block bootstrap). The final block is truncated to
// length n. All ⌈n/b⌉ start offsets are drawn up front in one batched
// IntnFill; expanding a start into its block consumes no randomness, so
// the stream is identical to the draw-then-expand loop.
func (rs *Resampler) blockIndices(n int) []int {
	rs.idx = intsFor(rs.idx, n)
	if n == 0 {
		return rs.idx
	}
	b := rs.seqBlockSize(n)
	nb := (n + b - 1) / b
	rs.starts = intsFor(rs.starts, nb)
	rs.r.IntnFill(rs.starts, n-b+1)
	rs.expandStarts(rs.starts, b, n)
	return rs.idx
}

// Block holds K consecutive aligned resamples of k windows in dense
// row-major form — the sample matrix the compiled constraint kernels
// consume. Data[wi] packs window wi's K rows back to back (sample s at
// [s*n, (s+1)*n)); Start and End snapshot the generator at the block's
// boundaries. A caller that abandons a drawn block entirely rewinds the
// resampler to Start, making the block invisible to every draw that
// follows. There are no per-sample snapshots: the block evaluator
// schedules decisions only at block edges (see nextDecision in
// internal/core), so a mid-block rewind point would never be used, and
// omitting the captures lets the fused draw paths batch an entire
// block's normals through one NormFill.
type Block struct {
	Data       [][]float64
	Start, End rng.State
	K          int
	ns         []int
	rows       [][]float64
}

// Row returns window wi's values for sample s.
func (blk *Block) Row(wi, s int) []float64 {
	n := blk.ns[wi]
	return blk.Data[wi][s*n : (s+1)*n]
}

// DrawBlock draws K consecutive aligned resamples of the windows into
// blk, reusing its buffers. The randomness consumed is exactly that of K
// successive Draw calls — sample s's rows are bit-identical to what the
// s-th Draw would have returned — and the generator state is snapshotted
// at the block boundaries so a caller can rewind an abandoned block
// (see Block).
func (rs *Resampler) DrawBlock(windows []series.Series, K int, blk *Block) {
	k := len(windows)
	blk.K = K
	blk.ns = intsFor(blk.ns, k)
	if len(blk.Data) != k {
		if cap(blk.Data) < k {
			blk.Data = make([][]float64, k)
		}
		blk.Data = blk.Data[:k]
	}
	if len(blk.rows) != k {
		if cap(blk.rows) < k {
			blk.rows = make([][]float64, k)
		}
		blk.rows = blk.rows[:k]
	}
	for wi, w := range windows {
		n := len(w)
		blk.ns[wi] = n
		if need := K * n; len(blk.Data[wi]) != need {
			blk.Data[wi] = sliceFor(blk.Data[wi], need)
		}
	}
	blk.Start = rs.r.State()
	if rs.strategy == Sequence && rs.drawSeqBlock(windows, K, blk) {
		return
	}
	if rs.strategy == Point && rs.drawPointBlock(windows, K, blk) {
		return
	}
	for s := 0; s < K; s++ {
		for wi := range windows {
			n := blk.ns[wi]
			blk.rows[wi] = blk.Data[wi][s*n : (s+1)*n]
		}
		rs.drawSampleInto(windows, blk.rows)
	}
	blk.End = rs.r.State()
}

// drawSeqBlock is DrawBlock's batched form of drawSeqShared for the
// common case where every window is primed, equal-length, and
// class-homogeneous (the run-materialized path of materializeSeqRuns
// applies to all of them). The per-sample dispatch — strategy switch,
// metadata identity checks, block-size derivation, scratch sizing — is
// hoisted out of the K-loop, and the symmetric windows' per-window
// NormFill calls fuse into one fill per sample: batching consecutive
// NormFloat64-equivalent draws into one call cannot change the stream,
// and the normals still land on the same windows in the same order, so
// every emitted value is bit-identical to K drawSampleInto calls. It
// reports false (drawing nothing) when any window fails the
// preconditions, leaving the generic per-sample loop to handle the
// mixed shapes.
func (rs *Resampler) drawSeqBlock(windows []series.Series, K int, blk *Block) bool {
	n := len(windows[0])
	if n < smallWindow {
		return false
	}
	symTotal := 0
	for wi, w := range windows {
		if len(w) != n {
			return false
		}
		m := rs.primed(wi, w)
		if m == nil || m.hasAsym || (m.hasCertain && m.hasSym) {
			return false
		}
		if m.hasSym {
			symTotal += n
		}
	}
	b := rs.seqBlockSize(n)
	nb := (n + b - 1) / b
	rs.starts = intsFor(rs.starts, nb)
	z := rs.normScratch(symTotal)
	// The value/sigma spans are sample-invariant; resolving them once
	// keeps the K-loop free of metadata pointer chasing. A nil sigma span
	// marks an all-certain window.
	if cap(rs.spans) < 2*len(windows) {
		rs.spans = make([][]float64, 2*len(windows))
	} else {
		rs.spans = rs.spans[:2*len(windows)]
	}
	for wi := range windows {
		m := &rs.meta[wi]
		rs.spans[2*wi] = m.view.X.Vals[m.view.Lo:m.view.Hi]
		if m.hasSym {
			rs.spans[2*wi+1] = m.view.X.SigUp[m.view.Lo:m.view.Hi]
		} else {
			rs.spans[2*wi+1] = nil
		}
	}
	for s := 0; s < K; s++ {
		rs.r.IntnFill(rs.starts, n-b+1)
		if symTotal > 0 {
			rs.r.NormFill(z)
		}
		zoff := 0
		for wi := range windows {
			out := blk.Data[wi][s*n : (s+1)*n]
			vals := rs.spans[2*wi]
			sig := rs.spans[2*wi+1]
			if sig == nil {
				// All-certain: concatenation of value spans.
				pos := 0
				for _, start := range rs.starts {
					end := pos + b
					if end > n {
						end = n
					}
					copy(out[pos:end], vals[start:start+end-pos])
					pos = end
				}
				continue
			}
			zw := z[zoff : zoff+n]
			zoff += n
			pos := 0
			for _, start := range rs.starts {
				end := pos + b
				if end > n {
					end = n
				}
				l := end - pos
				vs, ss := vals[start:start+l], sig[start:start+l]
				zs, os := zw[pos:end], out[pos:end]
				// 2x-unrolled: the block length is ⌈√n⌉-ish small, so
				// halving the loop-carried overhead is worth more here
				// than in a long stream loop.
				i := 0
				for ; i+1 < len(os); i += 2 {
					os[i] = vs[i] + ss[i]*zs[i]
					os[i+1] = vs[i+1] + ss[i+1]*zs[i+1]
				}
				if i < len(os) {
					os[i] = vs[i] + ss[i]*zs[i]
				}
				pos = end
			}
		}
	}
	blk.End = rs.r.State()
	return true
}

// drawPointBlock is DrawBlock's batched form of drawSampleInto for the
// Point strategy when every window is primed and class-homogeneous
// (all-certain or all-symmetric). Point draws consume no indices, so the
// whole block's randomness is one normal per symmetric position per
// sample, in sample order then window order then position order; fusing
// all K·symTotal draws into a single NormFill and hoisting the
// per-sample dispatch — strategy switch, metadata identity checks,
// scratch sizing — out of the K-loop emits a stream bit-identical to K
// drawSampleInto calls. This is the path point-granularity checks hit:
// their single-point windows are too small for perturbView's batching,
// so without it every sample pays the full dispatch chain for one draw.
// Reports false (drawing nothing) when any window is unprimed,
// asymmetric, or class-mixed, leaving those shapes to the generic
// per-sample loop.
func (rs *Resampler) drawPointBlock(windows []series.Series, K int, blk *Block) bool {
	symTotal := 0
	for wi, w := range windows {
		m := rs.primed(wi, w)
		if m == nil || m.hasAsym || (m.hasCertain && m.hasSym) {
			return false
		}
		if m.hasSym {
			symTotal += len(w)
		}
	}
	z := rs.normScratch(K * symTotal)
	if symTotal > 0 {
		rs.r.NormFill(z)
	}
	if len(windows) == 1 {
		// Unary checks keep one contiguous normal span per block, so the
		// K-loop collapses to flat array passes; the single-uncertain-point
		// shape of point-granularity checks reduces to one axpy over K.
		// The spans stay in locals — adaptive schedules draw many tiny
		// blocks, and storing slice headers into resampler scratch would
		// pay a write barrier per block for nothing.
		m := &rs.meta[0]
		vals := m.view.X.Vals[m.view.Lo:m.view.Hi]
		n, data := blk.ns[0], blk.Data[0]
		switch {
		case !m.hasSym:
			for s := 0; s < K; s++ {
				copy(data[s*n:(s+1)*n], vals)
			}
		case n == 1:
			v, sg := vals[0], m.view.X.SigUp[m.view.Lo]
			for s := 0; s < K; s++ {
				data[s] = v + sg*z[s]
			}
		default:
			sig := m.view.X.SigUp[m.view.Lo:m.view.Hi]
			for s := 0; s < K; s++ {
				out, zw := data[s*n:(s+1)*n], z[s*n:(s+1)*n]
				for i := range out {
					out[i] = vals[i] + sig[i]*zw[i]
				}
			}
		}
		blk.End = rs.r.State()
		return true
	}
	// The value/sigma spans are sample-invariant, exactly as in
	// drawSeqBlock; a nil sigma span marks an all-certain window.
	if cap(rs.spans) < 2*len(windows) {
		rs.spans = make([][]float64, 2*len(windows))
	} else {
		rs.spans = rs.spans[:2*len(windows)]
	}
	for wi := range windows {
		m := &rs.meta[wi]
		rs.spans[2*wi] = m.view.X.Vals[m.view.Lo:m.view.Hi]
		if m.hasSym {
			rs.spans[2*wi+1] = m.view.X.SigUp[m.view.Lo:m.view.Hi]
		} else {
			rs.spans[2*wi+1] = nil
		}
	}
	for s := 0; s < K; s++ {
		zoff := s * symTotal
		for wi := range windows {
			n := blk.ns[wi]
			out := blk.Data[wi][s*n : (s+1)*n]
			vals := rs.spans[2*wi]
			sig := rs.spans[2*wi+1]
			if sig == nil {
				copy(out, vals)
				continue
			}
			zw := z[zoff : zoff+n]
			zoff += n
			for i := range out {
				out[i] = vals[i] + sig[i]*zw[i]
			}
		}
	}
	blk.End = rs.r.State()
	return true
}

// Rewind resets the resampler's generator to a captured block-boundary
// state, undoing the draws of an abandoned block.
func (rs *Resampler) Rewind(st rng.State) { rs.r.SetState(st) }

// WindowSafe reports whether window slot wi (as last primed) is provably
// finite under perturbation — see Extraction.Safe. Consumers use it to
// hoist per-draw finiteness checks out of constraint evaluation.
func (rs *Resampler) WindowSafe(wi int) bool {
	if wi >= len(rs.meta) || rs.meta[wi].view.X == nil {
		return false
	}
	return rs.meta[wi].view.X.Safe()
}

// Blocks splits a window into the subsequent blocks of size b = ⌈√n⌉ used
// by the block bootstrap. The violation-analysis explanation E6 evaluates
// the constraint on each block individually (paper §V-B).
func Blocks(w series.Series) []series.Series {
	n := len(w)
	if n == 0 {
		return nil
	}
	b := BlockSize(n)
	out := make([]series.Series, 0, (n+b-1)/b)
	for i := 0; i < n; i += b {
		end := i + b
		if end > n {
			end = n
		}
		out = append(out, w[i:end])
	}
	return out
}

func sliceFor(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func intsFor(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func tagsFor(buf []Class, n int) []Class {
	if cap(buf) < n {
		return make([]Class, n)
	}
	return buf[:n]
}
