// Package resample implements the resampling strategies of SOUND's
// constraint evaluation (paper §IV-B). Resampling is not a performance
// device: it materializes the implicit variability of a window under the
// two modelled data-quality issues so that the constraint function can be
// evaluated on plausible alternative realizations.
//
// Three strategies correspond to the constraint taxonomy:
//
//   - Point: per-point Monte-Carlo perturbation with the asymmetric normal
//     uncertainty model — used for point-wise checks.
//   - Set: i.i.d. bootstrap (sampling points with replacement) layered with
//     the point perturbation — used for window-based set checks, where the
//     bootstrap propagates the sampling uncertainty of sparse windows.
//   - Sequence: block bootstrap with block size b = ⌈√n⌉ — used for
//     window-based sequence checks, preserving short-range ordering
//     within blocks.
//
// For k-ary checks the same random block/point indices are used across all
// k windows so that the series remain aligned (paper §IV-B).
package resample

import (
	"math"

	"sound/internal/rng"
	"sound/internal/series"
	"sound/internal/stat"
)

// Strategy selects how a window is resampled.
type Strategy int

const (
	// Point perturbs each point's value with its uncertainty model.
	Point Strategy = iota
	// Set draws points i.i.d. with replacement, then perturbs values.
	Set
	// Sequence draws contiguous blocks with replacement, then perturbs.
	Sequence
)

func (s Strategy) String() string {
	switch s {
	case Point:
		return "point"
	case Set:
		return "set"
	case Sequence:
		return "sequence"
	}
	return "unknown"
}

// PerturbValue draws one realization of a point's value under the
// asymmetric (split) normal uncertainty model: the value is shifted
// upward by |N(0, σ↑)| with probability σ↑/(σ↑+σ↓) and downward by
// |N(0, σ↓)| otherwise. The branch weighting makes the two half-normal
// pieces join into a continuous split-normal density, so the side with
// the larger standard deviation carries proportionally more probability
// mass — exactly the semantics of an asymmetric error bar (a point just
// above a threshold with a large downward error is *likely* below it,
// paper Fig. 1). A certain point (σ↑ = σ↓ = 0) is returned unaltered.
//
// A symmetric point (σ↑ = σ↓ = σ) short-circuits to v + σ·N(0,1), which
// is the same distribution — a fair branch coin on two mirrored
// half-normals is a plain normal — with one random draw instead of two.
func PerturbValue(p series.Point, r *rng.Rand) float64 {
	if p.Certain() {
		return p.V
	}
	if p.SigUp == p.SigDown {
		return p.V + r.NormFloat64()*p.SigUp
	}
	if r.Float64()*(p.SigUp+p.SigDown) < p.SigUp {
		return p.V + math.Abs(r.NormFloat64())*p.SigUp
	}
	return p.V - math.Abs(r.NormFloat64())*p.SigDown
}

// BlockSize returns the automatic block-bootstrap block size b = ⌈√n⌉
// (paper §IV-B), at least 1.
func BlockSize(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Sqrt(float64(n))))
}

// AutoBlockSize returns a data-driven block size for a sequence window:
// the larger of the ⌈√n⌉ default and the series' decorrelation length
// (the lag at which the sample autocorrelation falls inside the 95%
// white-noise band), clamped to n. Blocks must span the dependence range
// of the data or the bootstrap destroys exactly the structure a sequence
// constraint checks.
func AutoBlockSize(vals []float64) int {
	n := len(vals)
	if n <= 1 {
		return 1
	}
	b := BlockSize(n)
	if d := stat.DecorrelationLength(vals, n/2); d > b {
		b = d
	}
	if b > n {
		b = n
	}
	return b
}

// Resampler draws aligned resamples of k windows. Buffers are reused
// across draws, so the returned slices are only valid until the next call.
// A Resampler is not safe for concurrent use.
type Resampler struct {
	strategy  Strategy
	r         *rng.Rand
	blockSize int          // 0 = automatic b = ⌈√n⌉
	buf       [][]float64  // per-window value buffers, reused
	idx       []int        // shared index buffer for set/sequence draws
	meta      []winMeta    // per-window metadata primed for repeated draws
	own       []Extraction // owned extractions for windows primed from raw points
	norm      []float64    // normal-variate scratch for the batched kernels
	starts    []int        // block-start scratch for the sequence bootstrap
}

// winMeta binds window slot wi to its SoA extraction view for a run of
// Draw calls, plus the view's class mix (precomputed once so every draw
// dispatches straight to the right kernel). The (ptr, n) pair identifies
// the window slice the metadata was computed from; Draw only trusts it
// for an identical slice, so stale metadata can never be applied to
// different data that happens to occupy a reused buffer.
type winMeta struct {
	ptr                         *series.Point
	n                           int
	view                        View
	hasCertain, hasSym, hasAsym bool
}

// New returns a Resampler with the given strategy and random source.
func New(strategy Strategy, r *rng.Rand) *Resampler {
	return &Resampler{strategy: strategy, r: r}
}

// Strategy returns the resampling strategy.
func (rs *Resampler) Strategy() Strategy { return rs.strategy }

// SetBlockSize overrides the block-bootstrap block size; 0 restores the
// automatic b = ⌈√n⌉ rule.
func (rs *Resampler) SetBlockSize(b int) {
	if b < 0 {
		b = 0
	}
	rs.blockSize = b
}

// Reseed re-derives the resampler's random stream from parent, leaving
// it exactly as if freshly created with New(strategy, parent.Split())
// while keeping all allocated buffers. It advances parent.
func (rs *Resampler) Reseed(parent *rng.Rand) {
	parent.SplitInto(rs.r)
}

// Prime precomputes per-window metadata for a run of Draw calls over the
// same windows (Alg. 1 draws the same tuple up to N times): certainty
// flags, extracted values, and split-normal branch weights. Priming is
// optional — Draw verifies slice identity and silently falls back to the
// unprimed per-point path when the windows differ — but it turns
// all-certain windows into plain copies and removes a per-point addition
// from every uncertain draw.
func (rs *Resampler) Prime(windows []series.Series) {
	rs.sizeMeta(len(windows))
	for wi, w := range windows {
		rs.primeOwn(wi, w)
	}
}

// PrimeViews primes the resampler from caller-maintained extractions:
// views[wi] is used as the extraction of windows[wi] when it is valid for
// that window's length, skipping the per-window extraction pass
// entirely. Invalid (zero) views fall back to extracting from the raw
// points, so callers can mix shared and unextracted windows freely.
// The caller guarantees a valid view's SoA content matches the window's
// points — stream operators and the violation analyzer maintain that
// invariant incrementally; the (ptr, n) identity guard still protects
// against Draw being handed different windows afterwards.
func (rs *Resampler) PrimeViews(windows []series.Series, views []View) {
	rs.sizeMeta(len(windows))
	for wi, w := range windows {
		if wi < len(views) && views[wi].ValidFor(len(w)) {
			m := &rs.meta[wi]
			m.n = len(w)
			m.ptr = nil
			if len(w) > 0 {
				m.ptr = &w[0]
			}
			m.view = views[wi]
			m.hasCertain, m.hasSym, m.hasAsym = m.view.classes()
			continue
		}
		rs.primeOwn(wi, w)
	}
}

// sizeMeta sizes the metadata slice for k windows.
func (rs *Resampler) sizeMeta(k int) {
	if cap(rs.meta) < k {
		rs.meta = make([]winMeta, k)
	}
	rs.meta = rs.meta[:k]
}

// primeOwn extracts window slot wi into the resampler's own scratch
// extraction, which is reused across Prime calls — an Evaluator walking
// EvaluateAll windows re-extracts into the same buffers every time. The
// owned extractions grow on demand so fully view-primed runs never touch
// them.
func (rs *Resampler) primeOwn(wi int, w series.Series) {
	m := &rs.meta[wi]
	m.n = len(w)
	m.ptr = nil
	if len(w) > 0 {
		m.ptr = &w[0]
	}
	if wi >= len(rs.own) {
		if wi >= cap(rs.own) {
			own := make([]Extraction, wi+1, 2*(wi+1))
			copy(own, rs.own)
			rs.own = own
		}
		rs.own = rs.own[:wi+1]
	}
	x := &rs.own[wi]
	x.Extract(w)
	m.view = x.View()
	m.hasCertain, m.hasSym, m.hasAsym = m.view.classes()
}

// PrimedAllCertain reports whether every window passed to the last Prime
// call is entirely certain — in which case a Point-strategy Draw returns
// the raw values and consumes no randomness, so all draws are identical.
func (rs *Resampler) PrimedAllCertain() bool {
	for i := range rs.meta {
		if rs.meta[i].hasSym || rs.meta[i].hasAsym {
			return false
		}
	}
	return true
}

// primed returns the metadata primed for window slot wi iff it describes
// exactly the slice w.
func (rs *Resampler) primed(wi int, w series.Series) *winMeta {
	if wi >= len(rs.meta) {
		return nil
	}
	m := &rs.meta[wi]
	if m.n != len(w) || (len(w) > 0 && m.ptr != &w[0]) {
		return nil
	}
	return m
}

// ForConstraint maps constraint taxonomy traits to the appropriate
// strategy: point-wise checks use Point; windowed set checks use Set;
// windowed sequence checks use Sequence.
func ForConstraint(pointWise, ordered bool) Strategy {
	switch {
	case pointWise:
		return Point
	case ordered:
		return Sequence
	default:
		return Set
	}
}

// Draw produces one aligned resample of the k windows and returns the k
// value sequences. All windows must have equal length for Set and
// Sequence strategies (k-ary alignment requires shared indices); Draw
// falls back to per-window independent sampling when lengths differ,
// which is the defined behaviour for unary checks with k = 1 anyway.
func (rs *Resampler) Draw(windows []series.Series) [][]float64 {
	k := len(windows)
	// The buffer stores are guarded by length checks: Draw runs once per
	// sample on an unchanged window set, so after the first sample every
	// slot already fits and the loop carries no heap pointer writes (and
	// no write barriers) at all.
	if len(rs.buf) != k {
		if cap(rs.buf) < k {
			rs.buf = make([][]float64, k)
		}
		rs.buf = rs.buf[:k]
	}

	switch rs.strategy {
	case Point:
		for wi, w := range windows {
			buf := rs.buf[wi]
			if len(buf) != len(w) {
				buf = sliceFor(buf, len(w))
				rs.buf[wi] = buf
			}
			if m := rs.primed(wi, w); m != nil {
				rs.drawPoint(m, buf)
				continue
			}
			for i, p := range w {
				buf[i] = PerturbValue(p, rs.r)
			}
		}
	case Set:
		rs.drawIndexed(windows, rs.setIndices)
	case Sequence:
		rs.drawIndexed(windows, rs.blockIndices)
	}
	return rs.buf
}

// drawPoint perturbs one window through the compiled kernels. The
// sampling semantics per point are exactly PerturbValue's (certain points
// draw nothing); see kernel.go for the bit-parity argument.
func (rs *Resampler) drawPoint(m *winMeta, buf []float64) {
	if !m.hasSym && !m.hasAsym {
		copy(buf, m.view.X.Vals[m.view.Lo:m.view.Hi])
		return
	}
	if v := m.view; v.Hi-v.Lo == 1 {
		// Point-wise checks land here once per sample: a single uncertain
		// point, perturbed without entering the run-dispatched kernel.
		x, i, r := v.X, v.Lo, rs.r
		if up := x.SigUp[i]; x.Tags[i] == ClassSymmetric {
			buf[0] = x.Vals[i] + up*r.NormFloat64()
		} else {
			down := x.SigDown[i]
			if r.Float64()*(up+down) < up {
				buf[0] = x.Vals[i] + math.Abs(r.NormFloat64())*up
			} else {
				buf[0] = x.Vals[i] - math.Abs(r.NormFloat64())*down
			}
		}
		return
	}
	rs.perturbView(m.view, buf)
}

// drawIndexed samples shared indices per alignment group and materializes
// perturbed values. Windows of the same length share one index vector so
// that k aligned series stay aligned; a window with a different length
// gets its own independent index vector.
func (rs *Resampler) drawIndexed(windows []series.Series, gen func(n int) []int) {
	k := len(windows)
	// Fast path: all windows share a length (the common case for binary
	// index-aligned checks and all unary checks).
	allSame := true
	for _, w := range windows[1:] {
		if len(w) != len(windows[0]) {
			allSame = false
			break
		}
	}
	if allSame {
		n := len(windows[0])
		idx := gen(n)
		for wi := 0; wi < k; wi++ {
			buf := rs.buf[wi]
			if len(buf) != n {
				buf = sliceFor(buf, n)
				rs.buf[wi] = buf
			}
			rs.materialize(wi, windows[wi], idx, buf)
		}
		return
	}
	for wi, w := range windows {
		idx := gen(len(w))
		buf := rs.buf[wi]
		if len(buf) != len(w) {
			buf = sliceFor(buf, len(w))
			rs.buf[wi] = buf
		}
		rs.materialize(wi, w, idx, buf)
	}
}

// materialize fills buf with perturbed values of w at the given indices,
// taking the compiled-kernel path when metadata is primed.
func (rs *Resampler) materialize(wi int, w series.Series, idx []int, buf []float64) {
	m := rs.primed(wi, w)
	if m == nil {
		for i, j := range idx {
			buf[i] = PerturbValue(w[j], rs.r)
		}
		return
	}
	rs.materializeView(m, idx, buf)
}

// setIndices returns n i.i.d. uniform indices in [0, n), drawn through
// the batched IntnFill (stream-identical to n Intn calls).
func (rs *Resampler) setIndices(n int) []int {
	rs.idx = intsFor(rs.idx, n)
	if n > 0 {
		rs.r.IntnFill(rs.idx, n)
	}
	return rs.idx
}

// blockIndices returns n indices formed by concatenating contiguous
// blocks of size b = ⌈√n⌉ whose start offsets are drawn uniformly with
// replacement (moving-block bootstrap). The final block is truncated to
// length n. All ⌈n/b⌉ start offsets are drawn up front in one batched
// IntnFill; expanding a start into its block consumes no randomness, so
// the stream is identical to the draw-then-expand loop.
func (rs *Resampler) blockIndices(n int) []int {
	rs.idx = intsFor(rs.idx, n)
	if n == 0 {
		return rs.idx
	}
	b := rs.blockSize
	if b <= 0 {
		b = BlockSize(n)
	}
	if b > n {
		b = n
	}
	nb := (n + b - 1) / b
	rs.starts = intsFor(rs.starts, nb)
	rs.r.IntnFill(rs.starts, n-b+1)
	pos := 0
	for _, start := range rs.starts {
		end := pos + b
		if end > n {
			end = n
		}
		for ; pos < end; pos++ {
			rs.idx[pos] = start
			start++
		}
	}
	return rs.idx
}

// Blocks splits a window into the subsequent blocks of size b = ⌈√n⌉ used
// by the block bootstrap. The violation-analysis explanation E6 evaluates
// the constraint on each block individually (paper §V-B).
func Blocks(w series.Series) []series.Series {
	n := len(w)
	if n == 0 {
		return nil
	}
	b := BlockSize(n)
	out := make([]series.Series, 0, (n+b-1)/b)
	for i := 0; i < n; i += b {
		end := i + b
		if end > n {
			end = n
		}
		out = append(out, w[i:end])
	}
	return out
}

func sliceFor(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func intsFor(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func tagsFor(buf []Class, n int) []Class {
	if cap(buf) < n {
		return make([]Class, n)
	}
	return buf[:n]
}
