// Package resample implements the resampling strategies of SOUND's
// constraint evaluation (paper §IV-B). Resampling is not a performance
// device: it materializes the implicit variability of a window under the
// two modelled data-quality issues so that the constraint function can be
// evaluated on plausible alternative realizations.
//
// Three strategies correspond to the constraint taxonomy:
//
//   - Point: per-point Monte-Carlo perturbation with the asymmetric normal
//     uncertainty model — used for point-wise checks.
//   - Set: i.i.d. bootstrap (sampling points with replacement) layered with
//     the point perturbation — used for window-based set checks, where the
//     bootstrap propagates the sampling uncertainty of sparse windows.
//   - Sequence: block bootstrap with block size b = ⌈√n⌉ — used for
//     window-based sequence checks, preserving short-range ordering
//     within blocks.
//
// For k-ary checks the same random block/point indices are used across all
// k windows so that the series remain aligned (paper §IV-B).
package resample

import (
	"math"

	"sound/internal/rng"
	"sound/internal/series"
	"sound/internal/stat"
)

// Strategy selects how a window is resampled.
type Strategy int

const (
	// Point perturbs each point's value with its uncertainty model.
	Point Strategy = iota
	// Set draws points i.i.d. with replacement, then perturbs values.
	Set
	// Sequence draws contiguous blocks with replacement, then perturbs.
	Sequence
)

func (s Strategy) String() string {
	switch s {
	case Point:
		return "point"
	case Set:
		return "set"
	case Sequence:
		return "sequence"
	}
	return "unknown"
}

// PerturbValue draws one realization of a point's value under the
// asymmetric (split) normal uncertainty model: the value is shifted
// upward by |N(0, σ↑)| with probability σ↑/(σ↑+σ↓) and downward by
// |N(0, σ↓)| otherwise. The branch weighting makes the two half-normal
// pieces join into a continuous split-normal density, so the side with
// the larger standard deviation carries proportionally more probability
// mass — exactly the semantics of an asymmetric error bar (a point just
// above a threshold with a large downward error is *likely* below it,
// paper Fig. 1). A certain point (σ↑ = σ↓ = 0) is returned unaltered.
//
// A symmetric point (σ↑ = σ↓ = σ) short-circuits to v + σ·N(0,1), which
// is the same distribution — a fair branch coin on two mirrored
// half-normals is a plain normal — with one random draw instead of two.
func PerturbValue(p series.Point, r *rng.Rand) float64 {
	if p.Certain() {
		return p.V
	}
	if p.SigUp == p.SigDown {
		return p.V + r.NormFloat64()*p.SigUp
	}
	if r.Float64()*(p.SigUp+p.SigDown) < p.SigUp {
		return p.V + math.Abs(r.NormFloat64())*p.SigUp
	}
	return p.V - math.Abs(r.NormFloat64())*p.SigDown
}

// BlockSize returns the automatic block-bootstrap block size b = ⌈√n⌉
// (paper §IV-B), at least 1.
func BlockSize(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Sqrt(float64(n))))
}

// AutoBlockSize returns a data-driven block size for a sequence window:
// the larger of the ⌈√n⌉ default and the series' decorrelation length
// (the lag at which the sample autocorrelation falls inside the 95%
// white-noise band), clamped to n. Blocks must span the dependence range
// of the data or the bootstrap destroys exactly the structure a sequence
// constraint checks.
func AutoBlockSize(vals []float64) int {
	n := len(vals)
	if n <= 1 {
		return 1
	}
	b := BlockSize(n)
	if d := stat.DecorrelationLength(vals, n/2); d > b {
		b = d
	}
	if b > n {
		b = n
	}
	return b
}

// Resampler draws aligned resamples of k windows. Buffers are reused
// across draws, so the returned slices are only valid until the next call.
// A Resampler is not safe for concurrent use.
type Resampler struct {
	strategy  Strategy
	r         *rng.Rand
	blockSize int         // 0 = automatic b = ⌈√n⌉
	buf       [][]float64 // per-window value buffers, reused
	idx       []int       // shared index buffer for set/sequence draws
	meta      []winMeta   // per-window metadata primed for repeated draws
}

// winMeta caches per-window facts that hold across the many draws of one
// evaluation: the raw values (so an all-certain window resamples by copy
// instead of per-point perturbation) and a per-point perturbation code
// hoisting the split-normal branch weight out of the draw loop:
//
//	sum[i] == 0:  certain — emit vals[i] unperturbed
//	sum[i] < 0:   symmetric, σ = −sum[i] — emit vals[i] + σ·N(0,1)
//	sum[i] > 0:   asymmetric — branch weight σ↑+σ↓, then a half-normal
//
// The (ptr, n) pair identifies the window slice the metadata was
// computed from; Draw only trusts it for an identical slice, so stale
// metadata can never be applied to different data that happens to occupy
// a reused buffer.
type winMeta struct {
	ptr        *series.Point
	n          int
	allCertain bool
	vals       []float64
	sum        []float64
}

// New returns a Resampler with the given strategy and random source.
func New(strategy Strategy, r *rng.Rand) *Resampler {
	return &Resampler{strategy: strategy, r: r}
}

// Strategy returns the resampling strategy.
func (rs *Resampler) Strategy() Strategy { return rs.strategy }

// SetBlockSize overrides the block-bootstrap block size; 0 restores the
// automatic b = ⌈√n⌉ rule.
func (rs *Resampler) SetBlockSize(b int) {
	if b < 0 {
		b = 0
	}
	rs.blockSize = b
}

// Reseed re-derives the resampler's random stream from parent, leaving
// it exactly as if freshly created with New(strategy, parent.Split())
// while keeping all allocated buffers. It advances parent.
func (rs *Resampler) Reseed(parent *rng.Rand) {
	parent.SplitInto(rs.r)
}

// Prime precomputes per-window metadata for a run of Draw calls over the
// same windows (Alg. 1 draws the same tuple up to N times): certainty
// flags, extracted values, and split-normal branch weights. Priming is
// optional — Draw verifies slice identity and silently falls back to the
// unprimed per-point path when the windows differ — but it turns
// all-certain windows into plain copies and removes a per-point addition
// from every uncertain draw.
func (rs *Resampler) Prime(windows []series.Series) {
	if cap(rs.meta) < len(windows) {
		rs.meta = make([]winMeta, len(windows))
	}
	rs.meta = rs.meta[:len(windows)]
	for wi, w := range windows {
		m := &rs.meta[wi]
		m.n = len(w)
		m.ptr = nil
		if len(w) == 0 {
			m.allCertain = true
			m.vals = m.vals[:0]
			continue
		}
		m.ptr = &w[0]
		m.vals = sliceFor(m.vals, len(w))
		m.sum = sliceFor(m.sum, len(w))
		m.allCertain = true
		for i, p := range w {
			m.vals[i] = p.V
			switch {
			case p.Certain():
				m.sum[i] = 0
			case p.SigUp == p.SigDown:
				m.sum[i] = -p.SigUp
				m.allCertain = false
			default:
				m.sum[i] = p.SigUp + p.SigDown
				m.allCertain = false
			}
		}
	}
}

// PrimedAllCertain reports whether every window passed to the last Prime
// call is entirely certain — in which case a Point-strategy Draw returns
// the raw values and consumes no randomness, so all draws are identical.
func (rs *Resampler) PrimedAllCertain() bool {
	for i := range rs.meta {
		if !rs.meta[i].allCertain {
			return false
		}
	}
	return true
}

// primed returns the metadata primed for window slot wi iff it describes
// exactly the slice w.
func (rs *Resampler) primed(wi int, w series.Series) *winMeta {
	if wi >= len(rs.meta) {
		return nil
	}
	m := &rs.meta[wi]
	if m.n != len(w) || (len(w) > 0 && m.ptr != &w[0]) {
		return nil
	}
	return m
}

// ForConstraint maps constraint taxonomy traits to the appropriate
// strategy: point-wise checks use Point; windowed set checks use Set;
// windowed sequence checks use Sequence.
func ForConstraint(pointWise, ordered bool) Strategy {
	switch {
	case pointWise:
		return Point
	case ordered:
		return Sequence
	default:
		return Set
	}
}

// Draw produces one aligned resample of the k windows and returns the k
// value sequences. All windows must have equal length for Set and
// Sequence strategies (k-ary alignment requires shared indices); Draw
// falls back to per-window independent sampling when lengths differ,
// which is the defined behaviour for unary checks with k = 1 anyway.
func (rs *Resampler) Draw(windows []series.Series) [][]float64 {
	k := len(windows)
	if cap(rs.buf) < k {
		rs.buf = make([][]float64, k)
	}
	rs.buf = rs.buf[:k]

	switch rs.strategy {
	case Point:
		for wi, w := range windows {
			rs.buf[wi] = sliceFor(rs.buf[wi], len(w))
			if m := rs.primed(wi, w); m != nil {
				rs.drawPoint(m, w, rs.buf[wi])
				continue
			}
			for i, p := range w {
				rs.buf[wi][i] = PerturbValue(p, rs.r)
			}
		}
	case Set:
		rs.drawIndexed(windows, rs.setIndices)
	case Sequence:
		rs.drawIndexed(windows, rs.blockIndices)
	}
	return rs.buf
}

// drawPoint perturbs one window using primed metadata. The sampling
// semantics per point are exactly PerturbValue's (certain points draw
// nothing), with the branch-weight computation hoisted and the loop body
// inlined — function-call overhead is measurable at this call rate.
func (rs *Resampler) drawPoint(m *winMeta, w series.Series, buf []float64) {
	if m.allCertain {
		copy(buf, m.vals)
		return
	}
	r := rs.r
	vals, sums := m.vals, m.sum
	for i := range w {
		s := sums[i]
		if s == 0 {
			buf[i] = vals[i]
			continue
		}
		if s < 0 {
			buf[i] = vals[i] - s*r.NormFloat64()
			continue
		}
		p := &w[i]
		if r.Float64()*s < p.SigUp {
			buf[i] = p.V + math.Abs(r.NormFloat64())*p.SigUp
		} else {
			buf[i] = p.V - math.Abs(r.NormFloat64())*p.SigDown
		}
	}
}

// drawIndexed samples shared indices per alignment group and materializes
// perturbed values. Windows of the same length share one index vector so
// that k aligned series stay aligned; a window with a different length
// gets its own independent index vector.
func (rs *Resampler) drawIndexed(windows []series.Series, gen func(n int) []int) {
	k := len(windows)
	// Fast path: all windows share a length (the common case for binary
	// index-aligned checks and all unary checks).
	allSame := true
	for _, w := range windows[1:] {
		if len(w) != len(windows[0]) {
			allSame = false
			break
		}
	}
	if allSame {
		n := len(windows[0])
		idx := gen(n)
		for wi := 0; wi < k; wi++ {
			rs.buf[wi] = sliceFor(rs.buf[wi], n)
			rs.materialize(wi, windows[wi], idx, rs.buf[wi])
		}
		return
	}
	for wi, w := range windows {
		idx := gen(len(w))
		rs.buf[wi] = sliceFor(rs.buf[wi], len(w))
		rs.materialize(wi, w, idx, rs.buf[wi])
	}
}

// materialize fills buf with perturbed values of w at the given indices,
// taking the primed fast paths when metadata is available.
func (rs *Resampler) materialize(wi int, w series.Series, idx []int, buf []float64) {
	m := rs.primed(wi, w)
	if m == nil {
		for i, j := range idx {
			buf[i] = PerturbValue(w[j], rs.r)
		}
		return
	}
	if m.allCertain {
		for i, j := range idx {
			buf[i] = m.vals[j]
		}
		return
	}
	r := rs.r
	vals, sums := m.vals, m.sum
	for i, j := range idx {
		s := sums[j]
		if s == 0 {
			buf[i] = vals[j]
			continue
		}
		if s < 0 {
			buf[i] = vals[j] - s*r.NormFloat64()
			continue
		}
		p := &w[j]
		if r.Float64()*s < p.SigUp {
			buf[i] = p.V + math.Abs(r.NormFloat64())*p.SigUp
		} else {
			buf[i] = p.V - math.Abs(r.NormFloat64())*p.SigDown
		}
	}
}

// setIndices returns n i.i.d. uniform indices in [0, n).
func (rs *Resampler) setIndices(n int) []int {
	rs.idx = intsFor(rs.idx, n)
	for i := range rs.idx {
		rs.idx[i] = rs.r.Intn(n)
	}
	return rs.idx
}

// blockIndices returns n indices formed by concatenating contiguous
// blocks of size b = ⌈√n⌉ whose start offsets are drawn uniformly with
// replacement (moving-block bootstrap). The final block is truncated to
// length n.
func (rs *Resampler) blockIndices(n int) []int {
	rs.idx = intsFor(rs.idx, n)
	if n == 0 {
		return rs.idx
	}
	b := rs.blockSize
	if b <= 0 {
		b = BlockSize(n)
	}
	if b > n {
		b = n
	}
	pos := 0
	for pos < n {
		start := rs.r.Intn(n - b + 1)
		for j := 0; j < b && pos < n; j++ {
			rs.idx[pos] = start + j
			pos++
		}
	}
	return rs.idx
}

// Blocks splits a window into the subsequent blocks of size b = ⌈√n⌉ used
// by the block bootstrap. The violation-analysis explanation E6 evaluates
// the constraint on each block individually (paper §V-B).
func Blocks(w series.Series) []series.Series {
	n := len(w)
	if n == 0 {
		return nil
	}
	b := BlockSize(n)
	out := make([]series.Series, 0, (n+b-1)/b)
	for i := 0; i < n; i += b {
		end := i + b
		if end > n {
			end = n
		}
		out = append(out, w[i:end])
	}
	return out
}

func sliceFor(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func intsFor(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}
