package resample

import (
	"testing"

	"sound/internal/rng"
	"sound/internal/series"
)

func mixedWindow() series.Series {
	return series.Series{
		{T: 0, V: 5},                                // certain
		{T: 1, V: 10, SigUp: 2, SigDown: 2},         // symmetric
		{T: 2, V: -3, SigUp: 1, SigDown: 4},         // asymmetric
		{T: 3, V: 7, SigUp: 0.5, SigDown: 0.5},      // symmetric
		{T: 4, V: 100},                              // certain
		{T: 5, V: 0.25, SigUp: 3, SigDown: 0.00001}, // asymmetric
	}
}

// TestPrimedDrawMatchesUnprimed proves the fast-path parity claim: a
// primed resampler consumes the random stream identically to an unprimed
// one and produces bit-identical draws, for every strategy and across
// many consecutive draws (certain, symmetric, and asymmetric points all
// present).
func TestPrimedDrawMatchesUnprimed(t *testing.T) {
	for _, strat := range []Strategy{Point, Set, Sequence} {
		w := []series.Series{mixedWindow()}
		primed := New(strat, rng.New(77))
		plain := New(strat, rng.New(77))
		primed.Prime(w)
		for d := 0; d < 200; d++ {
			got := primed.Draw(w)
			want := plain.Draw(w)
			if len(got) != len(want) || len(got[0]) != len(want[0]) {
				t.Fatalf("%v draw %d: shape mismatch", strat, d)
			}
			for i := range got[0] {
				if got[0][i] != want[0][i] {
					t.Fatalf("%v draw %d point %d: primed %v, unprimed %v", strat, d, i, got[0][i], want[0][i])
				}
			}
		}
	}
}

// TestPrimeStaleMetadataIgnored ensures metadata primed for one window is
// never applied to a different slice that later occupies the same slot —
// the stream-checker buffer-reuse hazard.
func TestPrimeStaleMetadataIgnored(t *testing.T) {
	rs := New(Point, rng.New(3))
	a := series.Series{{T: 0, V: 1}, {T: 1, V: 2}}
	rs.Prime([]series.Series{a})
	if !rs.PrimedAllCertain() {
		t.Fatal("certain window not detected")
	}
	// Same backing length, different slice and different values.
	b := series.Series{{T: 0, V: 9}, {T: 1, V: 8}}
	out := rs.Draw([]series.Series{b})
	if out[0][0] != 9 || out[0][1] != 8 {
		t.Errorf("stale metadata applied: got %v, want [9 8]", out[0])
	}
	// Same slice mutated in place under identical header: Prime must be
	// called again by the owner; identity check alone cannot catch this.
	rs.Prime([]series.Series{b})
	b[0].V = 42
	rs.Prime([]series.Series{b})
	if out := rs.Draw([]series.Series{b}); out[0][0] != 42 {
		t.Errorf("re-prime did not refresh values: got %v", out[0][0])
	}
}

// TestReseedMatchesFreshResampler checks that Reseed restores the exact
// stream of a freshly split resampler, the property evaluator pooling
// relies on.
func TestReseedMatchesFreshResampler(t *testing.T) {
	w := []series.Series{mixedWindow()}

	parentA := rng.New(5)
	fresh := New(Point, parentA.Split())

	parentB := rng.New(5)
	pooled := New(Point, rng.New(999))
	pooled.Draw(w) // advance the pooled stream arbitrarily
	pooled.Reseed(parentB)

	for d := 0; d < 50; d++ {
		got := pooled.Draw(w)
		want := fresh.Draw(w)
		for i := range got[0] {
			if got[0][i] != want[0][i] {
				t.Fatalf("draw %d point %d: reseeded %v, fresh %v", d, i, got[0][i], want[0][i])
			}
		}
	}
}
