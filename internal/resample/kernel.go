package resample

import (
	"math"
	"sort"

	"sound/internal/series"
)

// This file holds the compiled window-resampling plan: the SoA extraction
// of a window and the tight per-class kernels Draw runs over it.
//
// Alg. 1 draws up to N resamples of the same window tuple, and the naive
// loop pays for that N times over: per point per sample it re-reads a
// series.Point struct, re-branches on the certain/symmetric/asymmetric
// uncertainty cases, and re-derives the split-normal branch weight. The
// plan splits that work at its natural frequency boundary. Extraction
// happens once per (window, evaluation): values and uncertainties are
// copied into flat float64 slices, each point is tagged with its
// perturbation class, and maximal class-homogeneous runs are recorded.
// Sampling happens N times over the extraction: per-class kernels process
// whole runs with no struct traffic and no per-point class branch, and
// symmetric runs draw their normals through rng.NormFill, which keeps the
// generator state in registers for the whole run.
//
// Bit-parity argument. PerturbValue consumes randomness per point as a
// pure function of the point's class: a certain point draws nothing, a
// symmetric point draws exactly one NormFloat64, an asymmetric point
// draws one Float64 (the branch coin) then one NormFloat64 (the
// half-normal). The kernels process points in exactly the order the
// scalar loop visits them — runs are contiguous and iterated in index
// order, gathers follow the index vector — so the sequence of draw
// *kinds* presented to the RNG is identical, and NormFill/IntnFill are
// stream-exact batched forms of NormFloat64/Intn (pinned by tests in
// internal/rng). Each emitted value is computed with the same floating
// point operations on the same operands as the scalar path. Hence every
// resample, and everything downstream of it, is bit-identical.

// Class tags a point's perturbation class, which fully determines how
// much randomness resampling the point consumes (see PerturbValue).
type Class uint8

const (
	// ClassCertain marks σ↑ = σ↓ = 0: the value is emitted unperturbed
	// and no randomness is consumed.
	ClassCertain Class = iota
	// ClassSymmetric marks σ↑ = σ↓ ≠ 0: one N(0,1) draw per resample.
	ClassSymmetric
	// ClassAsymmetric marks σ↑ ≠ σ↓: one uniform (branch coin) and one
	// N(0,1) draw per resample.
	ClassAsymmetric
)

// smallWindow is the point count below which the scalar SoA loop beats
// the run-dispatched batched kernels (loop setup and NormFill state
// staging dominate tiny windows, e.g. point-wise checks).
const smallWindow = 8

// classRun is a maximal run [Lo, Hi) of equally-tagged points.
type classRun struct {
	Lo, Hi int
	Class  Class
}

// Extraction is the SoA form of one window: parallel flat slices of
// values, directional uncertainties, and per-point class tags, plus the
// maximal class-homogeneous runs the kernels iterate. Buffers are reused
// across Extract calls. An Extraction does not alias the source window;
// callers maintaining one incrementally (stream operators) keep it in
// sync with AppendPoint and TrimFront.
type Extraction struct {
	Vals    []float64
	SigUp   []float64
	SigDown []float64
	Tags    []Class
	runs    []classRun
	// seen is the class mix of the whole extraction, a bitmask of
	// 1<<Class — kept current by Extract/AppendPoint/TrimFront so
	// whole-extraction views answer classes() without scanning runs.
	seen uint8
	// accV/accS upper-bound the point magnitudes: accV >= Σ|v|,
	// accS >= Σ(|σ↑|+|σ↓|), accumulated at extraction time and only ever
	// grown by AppendPoint (TrimFront keeps them, which stays a valid
	// bound for the remaining subset). Safe() derives the per-extraction
	// finiteness classification from them — see Safe for the contract.
	accV, accS float64
}

// safeLimit bounds the magnitude accumulators: while accV/16 + accS stays
// at or below MaxFloat64/16, every individual |v| + 16(σ↑+σ↓) is finite.
const safeLimit = math.MaxFloat64 / 16

// Safe reports whether every extracted point is certainly finite under
// perturbation: all values and uncertainties are finite (a NaN anywhere
// poisons the accumulators), and no perturbed value |v| + σ·|z| can
// overflow to ±Inf — the ziggurat's largest possible |z| is
// znR + 53·ln2/znR < 16, so |v| + 16(σ↑+σ↓) finite is sufficient. The
// test is conservative (a false does not mean unsafe, only unprovable);
// consumers that hoist per-draw finiteness checks out of their inner
// loops fall back to the checking path when it fails.
func (x *Extraction) Safe() bool {
	return x.accV*0x1p-4+x.accS <= safeLimit
}

// Len returns the number of extracted points.
func (x *Extraction) Len() int { return len(x.Vals) }

// Reset empties the extraction, keeping capacity.
func (x *Extraction) Reset() {
	x.Vals = x.Vals[:0]
	x.SigUp = x.SigUp[:0]
	x.SigDown = x.SigDown[:0]
	x.Tags = x.Tags[:0]
	x.runs = x.runs[:0]
	x.seen = 0
	x.accV, x.accS = 0, 0
}

// Extract (re)builds the extraction from w, reusing buffers. The loop is
// kept flat (no AppendPoint) because point-wise checks re-extract a
// one-point window per evaluation — prime cost is on the hot path there.
func (x *Extraction) Extract(w series.Series) {
	n := len(w)
	if n == 1 && cap(x.Vals) >= 1 && cap(x.SigUp) >= 1 && cap(x.SigDown) >= 1 &&
		cap(x.Tags) >= 1 && cap(x.runs) >= 1 {
		// Point-wise extraction with warm buffers: one point per prime,
		// every evaluation — worth skipping the general resize/run
		// bookkeeping entirely.
		p := w[0]
		x.Vals = x.Vals[:1]
		x.SigUp = x.SigUp[:1]
		x.SigDown = x.SigDown[:1]
		x.Tags = x.Tags[:1]
		x.runs = x.runs[:1]
		x.Vals[0] = p.V
		x.SigUp[0] = p.SigUp
		x.SigDown[0] = p.SigDown
		t := classify(p)
		x.Tags[0] = t
		x.runs[0] = classRun{Lo: 0, Hi: 1, Class: t}
		x.seen = 1 << t
		x.accV = math.Abs(p.V)
		x.accS = math.Abs(p.SigUp) + math.Abs(p.SigDown)
		return
	}
	x.Vals = sliceFor(x.Vals, n)
	x.SigUp = sliceFor(x.SigUp, n)
	x.SigDown = sliceFor(x.SigDown, n)
	x.Tags = tagsFor(x.Tags, n)
	x.runs = x.runs[:0]
	last := Class(0)
	seen := uint8(0)
	for i, p := range w {
		x.Vals[i] = p.V
		x.SigUp[i] = p.SigUp
		x.SigDown[i] = p.SigDown
		t := classify(p)
		x.Tags[i] = t
		seen |= 1 << t
		if i > 0 && t == last {
			x.runs[len(x.runs)-1].Hi = i + 1
			continue
		}
		x.runs = append(x.runs, classRun{Lo: i, Hi: i + 1, Class: t})
		last = t
	}
	x.seen = seen
	if n == 1 {
		// Point-wise extraction: one point per prime, where the batched
		// accumulator pass is all call overhead.
		x.accV = math.Abs(x.Vals[0])
		x.accS = math.Abs(x.SigUp[0]) + math.Abs(x.SigDown[0])
		return
	}
	x.accV, x.accS = 0, 0
	x.accumMagnitudes(0)
}

// accumMagnitudes folds points [from, Len) into the safety accumulators.
// It runs as a separate pass over the SoA slices with four independent
// partial sums, so the serial float-add latency chains overlap and the
// pass costs well under a cycle per point; the combine order differs from
// a sequential sum, which is fine — the accumulators are conservative
// bounds, not replayed values.
func (x *Extraction) accumMagnitudes(from int) {
	var v0, v1, v2, v3, s0, s1, s2, s3 float64
	vals := x.Vals[from:]
	// Reslice to the common length so the compiler can prove every index
	// below in bounds from the single loop condition.
	ups, downs := x.SigUp[from:][:len(vals)], x.SigDown[from:][:len(vals)]
	i := 0
	for ; i+3 < len(vals); i += 4 {
		v0 += math.Abs(vals[i])
		v1 += math.Abs(vals[i+1])
		v2 += math.Abs(vals[i+2])
		v3 += math.Abs(vals[i+3])
		s0 += math.Abs(ups[i]) + math.Abs(downs[i])
		s1 += math.Abs(ups[i+1]) + math.Abs(downs[i+1])
		s2 += math.Abs(ups[i+2]) + math.Abs(downs[i+2])
		s3 += math.Abs(ups[i+3]) + math.Abs(downs[i+3])
	}
	for ; i < len(vals); i++ {
		v0 += math.Abs(vals[i])
		s0 += math.Abs(ups[i]) + math.Abs(downs[i])
	}
	x.accV += (v0 + v1) + (v2 + v3)
	x.accS += (s0 + s1) + (s2 + s3)
}

// ExtendFrom appends the points of w beyond the extraction's current
// length, for callers whose window buffer only grows between fires: after
// appending events to w, ExtendFrom(w) brings the extraction back in
// sync at the cost of the new points only.
func (x *Extraction) ExtendFrom(w series.Series) {
	for i := x.Len(); i < len(w); i++ {
		x.AppendPoint(w[i])
	}
}

// AppendPoint extends the extraction by one point.
func (x *Extraction) AppendPoint(p series.Point) {
	t := classify(p)
	n := len(x.Vals)
	x.Vals = append(x.Vals, p.V)
	x.SigUp = append(x.SigUp, p.SigUp)
	x.SigDown = append(x.SigDown, p.SigDown)
	x.Tags = append(x.Tags, t)
	x.seen |= 1 << t
	x.accV += math.Abs(p.V)
	x.accS += math.Abs(p.SigUp) + math.Abs(p.SigDown)
	if m := len(x.runs); m > 0 && x.runs[m-1].Class == t {
		x.runs[m-1].Hi = n + 1
		return
	}
	x.runs = append(x.runs, classRun{Lo: n, Hi: n + 1, Class: t})
}

// TrimFront drops the first n points, copying the arrays down in place so
// previously handed-out Views into the extraction must not be used after
// a trim. Stream operators call it alongside their own window-buffer
// copy-down.
func (x *Extraction) TrimFront(n int) {
	if n <= 0 {
		return
	}
	if n >= x.Len() {
		x.Reset()
		return
	}
	m := copy(x.Vals, x.Vals[n:])
	x.Vals = x.Vals[:m]
	copy(x.SigUp, x.SigUp[n:])
	x.SigUp = x.SigUp[:m]
	copy(x.SigDown, x.SigDown[n:])
	x.SigDown = x.SigDown[:m]
	copy(x.Tags, x.Tags[n:])
	x.Tags = x.Tags[:m]
	// Rebuild the run list over the shifted tags; runs are few, and the
	// scan is linear in their count plus the clipped first run.
	runs := x.runs[:0]
	seen := uint8(0)
	for _, r := range x.runs {
		if r.Hi <= n {
			continue
		}
		lo := r.Lo - n
		if lo < 0 {
			lo = 0
		}
		runs = append(runs, classRun{Lo: lo, Hi: r.Hi - n, Class: r.Class})
		seen |= 1 << r.Class
	}
	x.runs = runs
	x.seen = seen
	// accV/accS are left as-is: dropping points only shrinks the true
	// magnitude sums, so the retained accumulators stay valid (if now
	// looser) upper bounds. Streams that trim also append, and appends
	// re-tighten nothing either way — Safe() only needs an upper bound.
}

// View returns a View covering the whole extraction.
func (x *Extraction) View() View { return View{X: x, Lo: 0, Hi: x.Len()} }

// Slice returns a View of the half-open point range [lo, hi) — the
// window-overlap primitive: sliding/count stream windows hand the kernels
// overlapping sub-slices of one shared extraction instead of re-extracting
// each window.
func (x *Extraction) Slice(lo, hi int) View { return View{X: x, Lo: lo, Hi: hi} }

// classify maps a point to its perturbation class with exactly the branch
// structure of PerturbValue, so class tags and the scalar path can never
// disagree on how much randomness a point consumes.
func classify(p series.Point) Class {
	if p.Certain() {
		return ClassCertain
	}
	if p.SigUp == p.SigDown {
		return ClassSymmetric
	}
	return ClassAsymmetric
}

// View is a half-open range of an Extraction — one window, possibly a
// sub-slice of a larger shared extraction. The zero View means "no
// extraction available"; consumers fall back to extracting themselves.
type View struct {
	X      *Extraction
	Lo, Hi int
}

// Len returns the number of points in the view.
func (v View) Len() int { return v.Hi - v.Lo }

// ValidFor reports whether the view is usable as the extraction of an
// n-point window: non-nil, in bounds, and of matching length. It cannot
// verify the extracted values match the window's — that is the caller's
// contract when passing shared extractions through WindowTuple.
func (v View) ValidFor(n int) bool {
	return v.X != nil && v.Lo >= 0 && v.Hi-v.Lo == n && v.Hi <= v.X.Len()
}

// classes reports which perturbation classes occur inside the view. A
// whole-extraction view answers from the cached mix; small sub-ranges
// scan their tags directly; larger ones scan the overlapping runs,
// located by binary search so narrow views over a long shared extraction
// (point windows sliding over a series) stay O(log runs), not O(runs).
func (v View) classes() (hasCertain, hasSym, hasAsym bool) {
	x := v.X
	if v.Lo == 0 && v.Hi == x.Len() {
		s := x.seen
		return s&(1<<ClassCertain) != 0, s&(1<<ClassSymmetric) != 0, s&(1<<ClassAsymmetric) != 0
	}
	if v.Len() <= 16 {
		var s uint8
		for _, t := range x.Tags[v.Lo:v.Hi] {
			s |= 1 << t
		}
		return s&(1<<ClassCertain) != 0, s&(1<<ClassSymmetric) != 0, s&(1<<ClassAsymmetric) != 0
	}
	for ri := x.runStart(v.Lo); ri < len(x.runs); ri++ {
		r := x.runs[ri]
		if r.Lo >= v.Hi {
			break
		}
		switch r.Class {
		case ClassCertain:
			hasCertain = true
		case ClassSymmetric:
			hasSym = true
		case ClassAsymmetric:
			hasAsym = true
		}
	}
	return
}

// runStart returns the index of the first run overlapping point lo (the
// first run with Hi > lo). Runs partition [0, Len) in order, so binary
// search applies.
func (x *Extraction) runStart(lo int) int {
	return sort.Search(len(x.runs), func(i int) bool { return x.runs[i].Hi > lo })
}

// normScratch returns a normal-variate scratch buffer of length n.
func (rs *Resampler) normScratch(n int) []float64 {
	rs.norm = sliceFor(rs.norm, n)
	return rs.norm
}

// perturbView is the point-perturbation kernel: it fills buf with one
// perturbed realization of the view's points, run by run in index order.
// Certain runs are block copies; symmetric runs batch their normals
// through NormFill and apply a fused gather-free vals+sig·z loop;
// asymmetric runs fall back to the scalar split-normal draw. The RNG
// stream consumed is exactly that of PerturbValue applied point by point.
func (rs *Resampler) perturbView(v View, buf []float64) {
	x := v.X
	r := rs.r
	if n := v.Len(); n < smallWindow {
		// Batched normals cannot amortize their setup over a handful of
		// points; the scalar SoA loop consumes the identical stream. The
		// sub-slices are hoisted so the loop indexes from zero with one
		// bounds check each.
		tags := x.Tags[v.Lo:v.Hi]
		vals := x.Vals[v.Lo:v.Hi]
		ups := x.SigUp[v.Lo:v.Hi]
		downs := x.SigDown[v.Lo:v.Hi]
		for i := 0; i < n; i++ {
			switch tags[i] {
			case ClassCertain:
				buf[i] = vals[i]
			case ClassSymmetric:
				buf[i] = vals[i] + ups[i]*r.NormFloat64()
			default:
				s := ups[i] + downs[i]
				if r.Float64()*s < ups[i] {
					buf[i] = vals[i] + math.Abs(r.NormFloat64())*ups[i]
				} else {
					buf[i] = vals[i] - math.Abs(r.NormFloat64())*downs[i]
				}
			}
		}
		return
	}
	for ri := x.runStart(v.Lo); ri < len(x.runs); ri++ {
		run := x.runs[ri]
		if run.Lo >= v.Hi {
			break
		}
		lo, hi := run.Lo, run.Hi
		if lo < v.Lo {
			lo = v.Lo
		}
		if hi > v.Hi {
			hi = v.Hi
		}
		o := lo - v.Lo
		switch run.Class {
		case ClassCertain:
			copy(buf[o:o+hi-lo], x.Vals[lo:hi])
		case ClassSymmetric:
			m := hi - lo
			z := rs.normScratch(m)
			r.NormFill(z)
			vals, sig, out := x.Vals[lo:hi], x.SigUp[lo:hi], buf[o:o+m]
			for i := range out {
				out[i] = vals[i] + sig[i]*z[i]
			}
		case ClassAsymmetric:
			for i := lo; i < hi; i++ {
				s := x.SigUp[i] + x.SigDown[i]
				if r.Float64()*s < x.SigUp[i] {
					buf[i-v.Lo] = x.Vals[i] + math.Abs(r.NormFloat64())*x.SigUp[i]
				} else {
					buf[i-v.Lo] = x.Vals[i] - math.Abs(r.NormFloat64())*x.SigDown[i]
				}
			}
		}
	}
}

// materializeView is the bootstrap-gather kernel: it fills buf with the
// perturbed values of the view's points at the given view-relative
// indices. The class mix of the view (precomputed at prime time) selects
// the kernel: an all-certain view is a pure gather; a view without
// asymmetric points batches all its normals in one NormFill — the class
// sequence along idx determines which gathered points consume one, so a
// counting pass replaces the per-point branch-and-call; mixed views run
// the scalar tag switch, which still beats the struct path by reading
// flat arrays.
func (rs *Resampler) materializeView(m *winMeta, idx []int, buf []float64) {
	x := m.view.X
	base := m.view.Lo
	vals := x.Vals[base:m.view.Hi]
	switch {
	case !m.hasSym && !m.hasAsym:
		for i, j := range idx {
			buf[i] = vals[j]
		}
	case !m.hasAsym:
		sig := x.SigUp[base:m.view.Hi]
		if !m.hasCertain {
			// All symmetric: every gathered point consumes one normal.
			z := rs.normScratch(len(idx))
			rs.r.NormFill(z)
			for i, j := range idx {
				buf[i] = vals[j] + sig[j]*z[i]
			}
			return
		}
		tags := x.Tags[base:m.view.Hi]
		draws := 0
		for _, j := range idx {
			if tags[j] == ClassSymmetric {
				draws++
			}
		}
		z := rs.normScratch(draws)
		rs.r.NormFill(z)
		zi := 0
		for i, j := range idx {
			if tags[j] == ClassSymmetric {
				buf[i] = vals[j] + sig[j]*z[zi]
				zi++
			} else {
				buf[i] = vals[j]
			}
		}
	default:
		r := rs.r
		tags := x.Tags[base:m.view.Hi]
		sigUp, sigDown := x.SigUp[base:m.view.Hi], x.SigDown[base:m.view.Hi]
		for i, j := range idx {
			switch tags[j] {
			case ClassCertain:
				buf[i] = vals[j]
			case ClassSymmetric:
				buf[i] = vals[j] + sigUp[j]*r.NormFloat64()
			default:
				s := sigUp[j] + sigDown[j]
				if r.Float64()*s < sigUp[j] {
					buf[i] = vals[j] + math.Abs(r.NormFloat64())*sigUp[j]
				} else {
					buf[i] = vals[j] - math.Abs(r.NormFloat64())*sigDown[j]
				}
			}
		}
	}
}
