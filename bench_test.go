package sound_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating it in quick mode), plus ablation benchmarks
// for the design choices called out in DESIGN.md §5. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks report wall time of a full regeneration;
// ablations additionally report domain metrics via b.ReportMetric.

import (
	"runtime"
	"testing"

	"sound"
	"sound/internal/bench"
	"sound/internal/experiments"
	"sound/internal/resample"
)

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	opts := experiments.Options{Seed: 1, Quick: true}
	for i := 0; i < b.N; i++ {
		out, err := experiments.Run(name, opts)
		if err != nil {
			b.Fatal(err)
		}
		if out.String() == "" {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkFig1Motivation regenerates the Fig. 1 motivating comparison.
func BenchmarkFig1Motivation(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig4Overhead regenerates the Fig. 4 overhead measurement for
// both scenarios (BASE_NOM vs SOUND).
func BenchmarkFig4Overhead(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5ParamSweepSmartGrid regenerates the Fig. 5 N/c sweep.
func BenchmarkFig5ParamSweepSmartGrid(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6ParamSweepAstro regenerates the Fig. 6 N/c sweep.
func BenchmarkFig6ParamSweepAstro(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7ParamQuadrants regenerates the Fig. 7 S-4 quadrants.
func BenchmarkFig7ParamQuadrants(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8QualityAmplification regenerates the Fig. 8 panels.
func BenchmarkFig8QualityAmplification(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9ChangeConstraintCost regenerates the Fig. 9 comparison.
func BenchmarkFig9ChangeConstraintCost(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkTable5NaiveAccuracy regenerates the Table V accuracy study.
func BenchmarkTable5NaiveAccuracy(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkTable6ViolationAnalysis regenerates the Table VI explanation
// counts and BASE_VA FPR.
func BenchmarkTable6ViolationAnalysis(b *testing.B) { benchExperiment(b, "table6") }

// --- Hot path and ablations ----------------------------------------------
//
// The workload bodies live in internal/bench so cmd/soundbench can run
// the identical code under testing.Benchmark and emit machine-readable
// JSON (soundbench -benchjson); these wrappers keep them reachable from
// `go test -bench` under their usual names.

// BenchmarkAblationEarlyStop compares Alg. 1's adaptive decision rule
// (check after every sample) against a fixed-budget variant that decides
// only after all N samples (CheckInterval = N).
func BenchmarkAblationEarlyStop(b *testing.B) {
	b.Run("adaptive", func(b *testing.B) { bench.AblationEarlyStop(b, 1) })
	b.Run("fixedN", func(b *testing.B) { bench.AblationEarlyStop(b, 100) })
}

// BenchmarkAblationBlockBootstrap compares the block bootstrap against a
// naive i.i.d. bootstrap for a sequence constraint on autocorrelated data.
func BenchmarkAblationBlockBootstrap(b *testing.B) {
	b.Run("block", func(b *testing.B) { bench.AblationBlockBootstrap(b, true) })
	b.Run("iid", func(b *testing.B) { bench.AblationBlockBootstrap(b, false) })
}

// BenchmarkAblationDecisionRule compares the credible-interval decision
// rule against an aggressive near-point-estimate rule (c = 0.05).
func BenchmarkAblationDecisionRule(b *testing.B) {
	b.Run("credible95", func(b *testing.B) { bench.AblationDecisionRule(b, 0.95) })
	b.Run("pointEstimate", func(b *testing.B) { bench.AblationDecisionRule(b, 0.05) })
}

// BenchmarkEvaluatePointCheck measures the core evaluation loop on a
// single certain point (the deterministic-collapse fast path).
func BenchmarkEvaluatePointCheck(b *testing.B) { bench.EvaluatePointCheck(b) }

// BenchmarkEvaluateSequenceCheck measures a windowed sequence evaluation
// (block bootstrap + correlation) on a 64-point binary window.
func BenchmarkEvaluateSequenceCheck(b *testing.B) { bench.EvaluateSequenceCheck(b) }

// BenchmarkEvaluateAllParallel measures the pooled-evaluator parallel
// path over 500 uncertain point windows (allocs/op tracks the
// O(workers) pooling claim and the shared-extraction window pass).
func BenchmarkEvaluateAllParallel(b *testing.B) { bench.EvaluateAllParallel(b) }

// BenchmarkStreamCheck measures the generic online stream-check
// operator's per-event overhead across window kinds.
func BenchmarkStreamCheck(b *testing.B) {
	b.Run("point", func(b *testing.B) { bench.StreamCheck(b, sound.PointWindow{}) })
	b.Run("tumbling", func(b *testing.B) { bench.StreamCheck(b, sound.TimeWindow{Size: 60}) })
	b.Run("sliding", func(b *testing.B) { bench.StreamCheck(b, sound.TimeWindow{Size: 60, Slide: 30}) })
	b.Run("count", func(b *testing.B) { bench.StreamCheck(b, sound.CountWindow{Size: 32}) })
	b.Run("keyed", bench.StreamCheckKeyed)
}

// BenchmarkStreamThroughput measures end-to-end ingest throughput
// (points/sec) through source → keyed window check → sink at several
// transport batch sizes; batch1 is the degenerate unbatched transport.
func BenchmarkStreamThroughput(b *testing.B) {
	b.Run("batch1", func(b *testing.B) { bench.StreamThroughput(b, 1) })
	b.Run("batch16", func(b *testing.B) { bench.StreamThroughput(b, 16) })
	b.Run("batch64", func(b *testing.B) { bench.StreamThroughput(b, 64) })
	b.Run("batch256", func(b *testing.B) { bench.StreamThroughput(b, 256) })
}

// BenchmarkStreamFusion prices the fused shard runtime on the linear
// source → check → sink chain: fusion forced on (one goroutine, direct
// calls) vs forced off (per-node goroutines over ring edges).
func BenchmarkStreamFusion(b *testing.B) {
	b.Run("on", func(b *testing.B) { bench.StreamFusion(b, true) })
	b.Run("off", func(b *testing.B) { bench.StreamFusion(b, false) })
}

// BenchmarkMultiCheck prices a suite of n co-window checks on one
// uncertain stream: n independent single-check operators (n sample
// matrices per window) against one multiplexed bucket (one shared
// matrix, members retiring as they decide). The pair at equal n is the
// multiplexing speedup; shared draws/window stays flat in n.
func BenchmarkMultiCheck(b *testing.B) {
	b.Run("independent/checks1", func(b *testing.B) { bench.MultiCheck(b, false, 1) })
	b.Run("independent/checks8", func(b *testing.B) { bench.MultiCheck(b, false, 8) })
	b.Run("independent/checks64", func(b *testing.B) { bench.MultiCheck(b, false, 64) })
	b.Run("shared/checks1", func(b *testing.B) { bench.MultiCheck(b, true, 1) })
	b.Run("shared/checks8", func(b *testing.B) { bench.MultiCheck(b, true, 8) })
	b.Run("shared/checks64", func(b *testing.B) { bench.MultiCheck(b, true, 64) })
}

// BenchmarkDecode prices the wire codecs (internal/wire) on warm
// decoders: zero allocations per event is the contract.
func BenchmarkDecode(b *testing.B) {
	b.Run("frame", bench.DecodeFrame)
	b.Run("ndjson", bench.DecodeNDJSON)
	b.Run("csv", bench.DecodeCSV)
}

// BenchmarkIngest prices the always-on server end to end: binary frames
// over loopback TCP through shard fan-in to completed verdicts,
// comparable to BenchmarkStreamThroughput/batch64.
func BenchmarkIngest(b *testing.B) {
	b.Run("loopback", bench.IngestLoopback)
}

// BenchmarkCheckpoint measures the deterministic state lifecycle's
// snapshot codec on a 256-group keyed operator: snapshot is the
// in-barrier serialization stall, restore the decode-and-rehydrate
// resume cost after a kill.
func BenchmarkCheckpoint(b *testing.B) {
	b.Run("snapshot", func(b *testing.B) { bench.Checkpoint(b, false) })
	b.Run("restore", func(b *testing.B) { bench.Checkpoint(b, true) })
}

// BenchmarkExplain measures one change-point explanation (§V-B what-if
// re-evaluations) for unary and binary checks.
func BenchmarkExplain(b *testing.B) {
	b.Run("unary", func(b *testing.B) { bench.Explain(b, 1) })
	b.Run("binary", func(b *testing.B) { bench.Explain(b, 2) })
}

// BenchmarkSummarize measures the full violation analysis of a
// multi-change-point result sequence, sequentially and fanned out over
// GOMAXPROCS pooled analyzers (bit-identical outputs).
func BenchmarkSummarize(b *testing.B) {
	b.Run("sequential", func(b *testing.B) { bench.Summarize(b, 0) })
	b.Run("parallel", func(b *testing.B) { bench.Summarize(b, runtime.GOMAXPROCS(0)) })
}

// BenchmarkDraw isolates one resampling iteration over a 64-point
// mixed-class window: the scalar PerturbValue path against the compiled
// SoA kernel path, per strategy. The pairs draw bit-identical values;
// the ratio is what plan compilation buys per draw.
func BenchmarkDraw(b *testing.B) {
	b.Run("point/scalar", func(b *testing.B) { bench.Draw(b, resample.Point, false) })
	b.Run("point/kernel", func(b *testing.B) { bench.Draw(b, resample.Point, true) })
	b.Run("set/scalar", func(b *testing.B) { bench.Draw(b, resample.Set, false) })
	b.Run("set/kernel", func(b *testing.B) { bench.Draw(b, resample.Set, true) })
	b.Run("sequence/scalar", func(b *testing.B) { bench.Draw(b, resample.Sequence, false) })
	b.Run("sequence/kernel", func(b *testing.B) { bench.Draw(b, resample.Sequence, true) })
}

// BenchmarkKernel measures the per-class batched kernels on single-class
// 64-point windows: the certain copy, the symmetric single-normal loop,
// and the asymmetric branch-coin loop.
func BenchmarkKernel(b *testing.B) {
	b.Run("certain", func(b *testing.B) { bench.Kernel(b, 0, 0) })
	b.Run("symmetric", func(b *testing.B) { bench.Kernel(b, 2, 2) })
	b.Run("asymmetric", func(b *testing.B) { bench.Kernel(b, 3, 1) })
}
