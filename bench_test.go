package sound_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating it in quick mode), plus ablation benchmarks
// for the design choices called out in DESIGN.md §5. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks report wall time of a full regeneration;
// ablations additionally report domain metrics via b.ReportMetric.

import (
	"testing"

	"sound"
	"sound/internal/experiments"
)

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	opts := experiments.Options{Seed: 1, Quick: true}
	for i := 0; i < b.N; i++ {
		out, err := experiments.Run(name, opts)
		if err != nil {
			b.Fatal(err)
		}
		if out.String() == "" {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkFig1Motivation regenerates the Fig. 1 motivating comparison.
func BenchmarkFig1Motivation(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig4Overhead regenerates the Fig. 4 overhead measurement for
// both scenarios (BASE_NOM vs SOUND).
func BenchmarkFig4Overhead(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5ParamSweepSmartGrid regenerates the Fig. 5 N/c sweep.
func BenchmarkFig5ParamSweepSmartGrid(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6ParamSweepAstro regenerates the Fig. 6 N/c sweep.
func BenchmarkFig6ParamSweepAstro(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7ParamQuadrants regenerates the Fig. 7 S-4 quadrants.
func BenchmarkFig7ParamQuadrants(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8QualityAmplification regenerates the Fig. 8 panels.
func BenchmarkFig8QualityAmplification(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9ChangeConstraintCost regenerates the Fig. 9 comparison.
func BenchmarkFig9ChangeConstraintCost(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkTable5NaiveAccuracy regenerates the Table V accuracy study.
func BenchmarkTable5NaiveAccuracy(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkTable6ViolationAnalysis regenerates the Table VI explanation
// counts and BASE_VA FPR.
func BenchmarkTable6ViolationAnalysis(b *testing.B) { benchExperiment(b, "table6") }

// --- Ablations -----------------------------------------------------------

// borderlineSeries returns an uncertain series whose range check is
// clear-cut for most points: the case where adaptive early stopping
// should save nearly all of the sampling budget.
func clearCutSeries(n int) sound.Series {
	s := make(sound.Series, n)
	for i := range s {
		s[i] = sound.Point{T: float64(i), V: 50, SigUp: 2, SigDown: 2}
	}
	return s
}

// BenchmarkAblationEarlyStop compares Alg. 1's adaptive decision rule
// (check after every sample) against a fixed-budget variant that decides
// only after all N samples (CheckInterval = N). The samples/op metric
// shows the adaptive rule consuming a fraction of the budget.
func BenchmarkAblationEarlyStop(b *testing.B) {
	data := clearCutSeries(64)
	check := sound.Check{
		Name:        "range",
		Constraint:  sound.Range(0, 100),
		SeriesNames: []string{"s"},
		Window:      sound.PointWindow{},
	}
	for _, variant := range []struct {
		name     string
		interval int
	}{
		{"adaptive", 1},
		{"fixedN", 100},
	} {
		b.Run(variant.name, func(b *testing.B) {
			params := sound.Params{Credibility: 0.95, MaxSamples: 100, CheckInterval: variant.interval}
			eval, err := sound.NewEvaluator(params, 1)
			if err != nil {
				b.Fatal(err)
			}
			samples := 0
			windows := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := check.Run(eval, []sound.Series{data})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					samples += r.Samples
					windows++
				}
			}
			b.ReportMetric(float64(samples)/float64(windows), "samples/window")
		})
	}
}

// BenchmarkAblationBlockBootstrap compares the block bootstrap against a
// naive i.i.d. bootstrap for a sequence constraint on autocorrelated
// data. The falseviol/op metric is the rate of spurious violations on a
// genuinely monotone series — the failure mode the block bootstrap
// bounds and E6 controls.
func BenchmarkAblationBlockBootstrap(b *testing.B) {
	// Monotone data with small uncertainty: the ground truth satisfies
	// the non-strict monotonicity constraint.
	n := 64
	data := make(sound.Series, n)
	for i := range data {
		data[i] = sound.Point{T: float64(i), V: float64(i) * 10, SigUp: 0.01, SigDown: 0.01}
	}
	mono := sound.MonotonicIncrease(false) // sequence constraint: block bootstrap
	iid := mono
	iid.Orderedness = sound.Set // forces the i.i.d. bootstrap strategy

	for _, variant := range []struct {
		name       string
		constraint sound.Constraint
	}{
		{"block", mono},
		{"iid", iid},
	} {
		b.Run(variant.name, func(b *testing.B) {
			check := sound.Check{
				Name:        variant.name,
				Constraint:  variant.constraint,
				SeriesNames: []string{"s"},
				Window:      sound.CountWindow{Size: 16},
			}
			eval, err := sound.NewEvaluator(sound.Params{Credibility: 0.95, MaxSamples: 100}, 2)
			if err != nil {
				b.Fatal(err)
			}
			falseViol, windows := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := check.Run(eval, []sound.Series{data})
				if err != nil {
					b.Fatal(err)
				}
				results = sound.ControlE6(variant.constraint, results)
				for _, r := range results {
					windows++
					if r.Outcome == sound.Violated {
						falseViol++
					}
				}
			}
			b.ReportMetric(float64(falseViol)/float64(windows), "falseviol/window")
		})
	}
}

// BenchmarkAblationDecisionRule compares the credible-interval decision
// rule against an aggressive near-point-estimate rule (c = 0.05) on a
// borderline window. The falseconcl/op metric counts conclusions drawn
// on data that only supports ⊣.
func BenchmarkAblationDecisionRule(b *testing.B) {
	borderline := sound.Series{{T: 0, V: 10, SigUp: 5, SigDown: 5}}
	check := sound.Check{
		Name:        "gt",
		Constraint:  sound.GreaterThan(10),
		SeriesNames: []string{"s"},
		Window:      sound.PointWindow{},
	}
	for _, variant := range []struct {
		name string
		c    float64
	}{
		{"credible95", 0.95},
		{"pointEstimate", 0.05},
	} {
		b.Run(variant.name, func(b *testing.B) {
			eval, err := sound.NewEvaluator(sound.Params{Credibility: variant.c, MaxSamples: 100}, 3)
			if err != nil {
				b.Fatal(err)
			}
			falseConcl, windows := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := check.Run(eval, []sound.Series{borderline})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					windows++
					if r.Outcome != sound.Inconclusive {
						falseConcl++
					}
				}
			}
			b.ReportMetric(float64(falseConcl)/float64(windows), "falseconcl/window")
		})
	}
}

// BenchmarkEvaluatePointCheck measures the core evaluation loop on a
// single certain point (the cheapest path: 5 samples to conclude).
func BenchmarkEvaluatePointCheck(b *testing.B) {
	data := sound.FromValues(50)
	c := sound.Range(0, 100)
	eval, err := sound.NewEvaluator(sound.DefaultParams(), 4)
	if err != nil {
		b.Fatal(err)
	}
	tuple := sound.PointWindow{}.Windows([]sound.Series{data})[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eval.Evaluate(c, tuple)
	}
}

// BenchmarkEvaluateSequenceCheck measures a windowed sequence evaluation
// (block bootstrap + correlation) on a 64-point binary window.
func BenchmarkEvaluateSequenceCheck(b *testing.B) {
	n := 64
	x := make(sound.Series, n)
	y := make(sound.Series, n)
	for i := range x {
		x[i] = sound.Point{T: float64(i), V: float64(i), SigUp: 1, SigDown: 1}
		y[i] = sound.Point{T: float64(i), V: float64(i) + 5, SigUp: 1, SigDown: 1}
	}
	c := sound.CorrelationAbove(0.2)
	eval, err := sound.NewEvaluator(sound.DefaultParams(), 5)
	if err != nil {
		b.Fatal(err)
	}
	tuple := sound.GlobalWindow{}.Windows([]sound.Series{x, y})[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = eval.Evaluate(c, tuple)
	}
}
