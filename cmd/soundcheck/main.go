// Command soundcheck evaluates a sanity constraint over one or two CSV
// data series from the command line, with SOUND's quality-aware
// evaluation or the naive baseline.
//
// CSV layout: t,v[,sig_up[,sig_down]] with an optional header row.
//
// Examples:
//
//	soundcheck -constraint range -min 0 -max 100 series.csv
//	soundcheck -constraint monotonic -window count:10 work.csv
//	soundcheck -constraint corr -threshold 0.2 -window time:30 a.csv b.csv
//	soundcheck -constraint range -min 0 -max 1 -naive normalized.csv
//	soundcheck -constraint gt -threshold 10 -window time:20 -explain -parallel series.csv
//
// Streaming replays can be checkpointed and resumed: -checkpoint FILE
// snapshots the full operator state every -checkpoint-every events at a
// quiescent stream barrier, and -restore FILE resumes a killed replay
// from the snapshot, producing outcome counts bit-identical to an
// uninterrupted run:
//
//	soundcheck -stream -checkpoint state.ckp -checkpoint-every 1000 \
//	    -constraint fraction -min 0 -max 13 -threshold 0.8 -window time:12:5 series.csv
//	# ... killed mid-stream; resume:
//	soundcheck -stream -restore state.ckp \
//	    -constraint fraction -min 0 -max 13 -threshold 0.8 -window time:12:5 series.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sound"
	"sound/internal/checker"
	"sound/internal/checkpoint"
	"sound/internal/ingest"
	"sound/internal/series"
	"sound/internal/stream"
	"sound/internal/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool; exit code 0 = no violations, 2 = violations
// found, 1 = usage or input error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("soundcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		constraint = fs.String("constraint", "range", "constraint template: range, gt, nonneg, fraction, monotonic, maxdelta, stdnonzero, corr, nocorr, r2, ks, count")
		minV       = fs.Float64("min", 0, "lower bound (range, fraction)")
		maxV       = fs.Float64("max", 1, "upper bound (range, fraction)")
		threshold  = fs.Float64("threshold", 0.2, "threshold (gt, fraction, maxdelta, corr, nocorr, r2, ks)")
		window     = fs.String("window", "point", "windowing: point, global, session:<gap>, time:<size>[:<slide>], count:<size>[:<slide>]")
		cred       = fs.Float64("c", 0.95, "credibility level c")
		maxSamples = fs.Int("n", 100, "maximum sample size N")
		seed       = fs.Uint64("seed", 1, "deterministic seed")
		naive      = fs.Bool("naive", false, "use the naive (quality-ignorant) evaluation")
		streaming  = fs.Bool("stream", false, "replay the series through the streaming engine and evaluate the check online (summary only)")
		ckptPath   = fs.String("checkpoint", "", "with -stream: snapshot operator state to this file every -checkpoint-every events")
		ckptEvery  = fs.Int("checkpoint-every", 1000, "events between checkpoints (with -checkpoint)")
		restore    = fs.String("restore", "", "with -stream: resume the replay from this snapshot file")
		fuse       = fs.String("fuse", "auto", "with -stream: operator fusion in the dataflow engine: auto (engine default, overridable via SOUND_STREAM_FUSE), on, or off")
		explain    = fs.Bool("explain", false, "run the violation analysis (change points, explanations E1-E6) on the results")
		parallel   = fs.Bool("parallel", false, "fan the violation analysis out over GOMAXPROCS workers (with -explain; output is identical to sequential)")
		verbose    = fs.Bool("v", false, "print every window outcome, not just the summary")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	c, arity, err := buildConstraint(*constraint, *minV, *maxV, *threshold)
	if err != nil {
		return fail(stderr, err)
	}
	if fs.NArg() != arity {
		return fail(stderr, fmt.Errorf("constraint %q needs %d series file(s), got %d", *constraint, arity, fs.NArg()))
	}
	// Batch evaluation needs whole series in memory; the streaming replay
	// reads the files incrementally inside runStream (O(window) memory).
	var ss []sound.Series
	if !*streaming {
		for _, path := range fs.Args() {
			f, err := os.Open(path)
			if err != nil {
				return fail(stderr, err)
			}
			s, err := sound.ReadCSV(f)
			f.Close()
			if err != nil {
				return fail(stderr, fmt.Errorf("%s: %w", path, err))
			}
			ss = append(ss, s)
		}
	}

	win, err := buildWindow(*window)
	if err != nil {
		return fail(stderr, err)
	}
	check := sound.Check{Name: *constraint, Constraint: c, SeriesNames: fs.Args(), Window: win}

	if *explain && (*naive || *streaming) {
		return fail(stderr, fmt.Errorf("-explain needs the full SOUND evaluation (drop -naive/-stream)"))
	}
	if (*ckptPath != "" || *restore != "") && !*streaming {
		return fail(stderr, fmt.Errorf("-checkpoint/-restore need -stream"))
	}
	switch *fuse {
	case "auto", "on", "off":
	default:
		return fail(stderr, fmt.Errorf("-fuse %q out of range (want auto, on, or off)", *fuse))
	}
	if *ckptPath != "" && *ckptEvery <= 0 {
		return fail(stderr, fmt.Errorf("-checkpoint-every %d out of range (want >= 1)", *ckptEvery))
	}

	counts := map[sound.Outcome]int{}
	var results []sound.Result
	if *streaming {
		var err error
		counts, err = runStream(check, fs.Args(), sound.Params{Credibility: *cred, MaxSamples: *maxSamples}, *seed, *naive, *ckptPath, *ckptEvery, *restore, *fuse)
		if err != nil {
			return fail(stderr, err)
		}
	} else if *naive {
		tuples := win.Windows(ss)
		for _, tuple := range tuples {
			o := sound.EvaluateNaive(c, tuple)
			counts[o]++
			if *verbose {
				fmt.Fprintf(stdout, "window %d [%g, %g): %v\n", tuple.Index, tuple.Start, tuple.End, o)
			}
		}
	} else {
		eval, err := sound.NewEvaluator(sound.Params{Credibility: *cred, MaxSamples: *maxSamples}, *seed)
		if err != nil {
			return fail(stderr, err)
		}
		results, err = check.Run(eval, ss)
		if err != nil {
			return fail(stderr, err)
		}
		for _, r := range results {
			counts[r.Outcome]++
			if *verbose {
				fmt.Fprintf(stdout, "window %d [%g, %g): %v  P(viol)=%.3f  samples=%d\n",
					r.Window.Index, r.Window.Start, r.Window.End, r.Outcome, r.ViolationProb, r.Samples)
			}
		}
	}
	total := counts[sound.Satisfied] + counts[sound.Violated] + counts[sound.Inconclusive]
	fmt.Fprintf(stdout, "%s: %d windows — ⊤ %d, ⊥ %d, ⊣ %d\n",
		check.Name, total, counts[sound.Satisfied], counts[sound.Violated], counts[sound.Inconclusive])
	if *explain {
		params := sound.Params{Credibility: *cred, MaxSamples: *maxSamples}
		a, err := sound.NewAnalyzer(params, *seed)
		if err != nil {
			return fail(stderr, err)
		}
		var sum *sound.Summary
		if *parallel {
			sum, err = sound.SummarizeParallel(context.Background(), check, results, a, nil, *cred, 0)
			if err != nil {
				return fail(stderr, err)
			}
		} else {
			sum = sound.Summarize(check, results, a, nil, *cred)
		}
		fmt.Fprint(stdout, sum.String())
	}
	if counts[sound.Violated] > 0 {
		return 2
	}
	return 0
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "soundcheck:", err)
	return 1
}

// csvCursor streams one CSV file one point at a time through the
// wire.CSVScanner pooled reader, holding O(buffer) memory instead of the
// whole file. The merge in runStream only ever inspects each file's
// head point, so one-point lookahead reproduces the historical
// slurp-then-merge order exactly. Quoted CSV (which the scanner punts
// on) falls back to sound.ReadCSV: the file is reopened, slurped, and
// the points already emitted are skipped — identical output, the memory
// guarantee degrades to O(file) for that one file.
type csvCursor struct {
	path    string
	f       *os.File
	sc      *wire.CSVScanner
	slurped sound.Series // non-nil after quoted-CSV fallback
	idx     int          // next slurped index
	cur     series.Point
	ok      bool // cur holds an unconsumed point
	emitted int  // points handed out, for the fallback skip
	err     error
}

func newCSVCursor(path string) (*csvCursor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	cur := &csvCursor{path: path, f: f, sc: wire.NewCSVScanner(f)}
	cur.advance()
	return cur, cur.err
}

// advance loads the next point into cur. On any terminal condition
// (EOF, error) ok stays false and the file is closed.
func (c *csvCursor) advance() {
	if c.err != nil {
		c.ok = false
		return
	}
	if c.slurped != nil {
		if c.idx < len(c.slurped) {
			c.cur, c.ok = c.slurped[c.idx], true
			c.idx++
			c.emitted++
		} else {
			c.ok = false
		}
		return
	}
	p, err := c.sc.Next()
	switch {
	case err == nil:
		c.cur, c.ok = p, true
		c.emitted++
	case err == io.EOF:
		c.ok = false
		c.close()
	case err == wire.ErrQuotedCSV:
		c.fallbackSlurp()
	default:
		c.ok, c.err = false, fmt.Errorf("%s: %w", c.path, err)
		c.close()
	}
}

func (c *csvCursor) fallbackSlurp() {
	c.close()
	f, err := os.Open(c.path)
	if err != nil {
		c.ok, c.err = false, err
		return
	}
	s, err := sound.ReadCSV(f)
	f.Close()
	if err != nil {
		c.ok, c.err = false, fmt.Errorf("%s: %w", c.path, err)
		return
	}
	c.slurped, c.idx = s, c.emitted
	c.advance()
}

func (c *csvCursor) close() {
	if c.f != nil {
		c.f.Close()
		c.f = nil
	}
}

// runStream replays the series through the dataflow engine and evaluates
// the check with the generic online stream operator: events from all
// input files are merged in time order into one source, keyed by file
// path, and routed to the check inputs by key. The files are streamed —
// memory stays O(window), not O(file) — and the outcome counts match
// what the check's windows produce online.
//
// With ckptPath the source requests a drain-to-barrier snapshot every
// `every` events and atomically writes the operator state plus the
// replay offset; with restorePath the state is loaded back, the first
// offset events are skipped, and the resumed replay is bit-identical to
// an uninterrupted one.
func runStream(check sound.Check, paths []string, params sound.Params, seed uint64, naive bool, ckptPath string, every int, restorePath, fuse string) (map[sound.Outcome]int, error) {
	out := &checker.StreamOutcomes{}
	cfg := checker.StreamCheck{
		Check:   check,
		Params:  params,
		Seed:    seed,
		Naive:   naive,
		Forward: true,
		Out:     out,
		Route:   checker.ByInputKeys(check.SeriesNames...),
	}
	var reg *checker.StreamRegistry
	if ckptPath != "" || restorePath != "" {
		reg = checker.NewStreamRegistry()
		cfg.Registry = reg
	}
	factory, err := checker.NewStreamChecker(cfg)
	if err != nil {
		return nil, err
	}
	fp := streamFingerprint(check, params, seed, naive)
	var offset uint64
	if restorePath != "" {
		data, err := os.ReadFile(restorePath)
		if err != nil {
			return nil, err
		}
		dec, err := checkpoint.NewDecoder(data)
		if err != nil {
			return nil, err
		}
		if got := dec.String(); dec.Err() == nil && got != fp {
			return nil, fmt.Errorf("snapshot %s was written by a different run configuration (%q, this run is %q)", restorePath, got, fp)
		}
		offset = dec.Uvarint()
		if err := reg.DecodeFrom(dec); err != nil {
			return nil, fmt.Errorf("%s: %w", restorePath, err)
		}
	}

	cursors := make([]*csvCursor, len(paths))
	for i, path := range paths {
		cur, err := newCSVCursor(path)
		if err != nil {
			for _, c := range cursors[:i] {
				c.close()
			}
			return nil, err
		}
		cursors[i] = cur
	}

	// Time-ordered merge of the input streams (each cursor exposes its
	// head point); sent counts the logical event position so a restored
	// replay skips what the snapshot run already processed. A cursor
	// that fails mid-file aborts the replay; the error surfaces after
	// the graph stops.
	var snapErr, srcErr error
	replay := func(emit stream.EmitFunc, barrier stream.BarrierFunc) {
		defer func() {
			for _, c := range cursors {
				c.close()
			}
		}()
		var sent uint64
		for {
			best := -1
			for i, c := range cursors {
				if c.ok && (best < 0 || c.cur.T < cursors[best].cur.T) {
					best = i
				}
			}
			if best < 0 {
				return
			}
			p := cursors[best].cur
			cursors[best].advance()
			if err := cursors[best].err; err != nil {
				srcErr = err
				return
			}
			sent++
			if sent <= offset {
				continue
			}
			emit(stream.Event{Time: p.T, Key: check.SeriesNames[best], Value: p.V, SigUp: p.SigUp, SigDown: p.SigDown})
			if ckptPath != "" && every > 0 && sent%uint64(every) == 0 {
				pos := sent
				barrier(func() {
					if err := writeSnapshot(ckptPath, fp, pos, reg); err != nil && snapErr == nil {
						snapErr = err
					}
				})
			}
		}
	}
	g := stream.NewGraph()
	// Fusion is a scheduling choice with bit-identical results either
	// way (DESIGN.md §4j); the flag exists to pin a mode when comparing
	// replays or debugging the engine. "auto" leaves the engine default
	// (and the SOUND_STREAM_FUSE escape hatch) in charge.
	if fuse != "auto" {
		g.SetFusion(fuse == "on")
	}
	var src *stream.Node
	if reg != nil {
		src = g.AddCheckpointSource("csv", replay)
	} else {
		src = g.AddSource("csv", func(emit stream.EmitFunc) { replay(emit, nil) })
	}
	chk := g.AddOperator("check", 1, factory)
	if err := g.Connect(src, chk); err != nil {
		return nil, err
	}
	if err := g.Connect(chk, g.AddSink("drain", nil)); err != nil {
		return nil, err
	}
	if _, err := g.Run(); err != nil {
		return nil, err
	}
	if srcErr != nil {
		return nil, srcErr
	}
	if snapErr != nil {
		return nil, fmt.Errorf("writing checkpoint: %w", snapErr)
	}
	c := out.Counts()
	return map[sound.Outcome]int{
		sound.Satisfied:    c.Satisfied,
		sound.Violated:     c.Violated,
		sound.Inconclusive: c.Inconclusive,
	}, nil
}

// streamFingerprint identifies a replay configuration: restoring a
// snapshot under different inputs, parameters, or seeds would resume
// into a stream it does not belong to, so the mismatch fails loudly.
func streamFingerprint(check sound.Check, params sound.Params, seed uint64, naive bool) string {
	return fmt.Sprintf("soundcheck|%s|%s|%v|c=%g|n=%d|seed=%d|naive=%t|%s",
		check.Name, check.Window, check.Constraint.Granularity, params.Credibility,
		params.MaxSamples, seed, naive, strings.Join(check.SeriesNames, ","))
}

// writeSnapshot persists one barrier snapshot: fingerprint, replay
// offset, and the registry payload, written to a temp file and renamed
// so a crash mid-write never corrupts the previous snapshot.
func writeSnapshot(path, fp string, offset uint64, reg *checker.StreamRegistry) error {
	enc := checkpoint.NewEncoder()
	enc.String(fp)
	enc.Uvarint(offset)
	reg.EncodeTo(enc)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, enc.Finish(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// buildConstraint and buildWindow delegate to internal/ingest so
// soundcheck and soundserve resolve the same template and window
// vocabulary from one implementation.
func buildConstraint(name string, min, max, threshold float64) (sound.Constraint, int, error) {
	return ingest.BuildConstraint(name, min, max, threshold)
}

func buildWindow(spec string) (sound.Windower, error) {
	return ingest.BuildWindow(spec)
}
