// Command soundcheck evaluates a sanity constraint over one or two CSV
// data series from the command line, with SOUND's quality-aware
// evaluation or the naive baseline.
//
// CSV layout: t,v[,sig_up[,sig_down]] with an optional header row.
//
// Examples:
//
//	soundcheck -constraint range -min 0 -max 100 series.csv
//	soundcheck -constraint monotonic -window count:10 work.csv
//	soundcheck -constraint corr -threshold 0.2 -window time:30 a.csv b.csv
//	soundcheck -constraint range -min 0 -max 1 -naive normalized.csv
//	soundcheck -constraint gt -threshold 10 -window time:20 -explain -parallel series.csv
//
// Streaming replays can be checkpointed and resumed: -checkpoint FILE
// snapshots the full operator state every -checkpoint-every events at a
// quiescent stream barrier, and -restore FILE resumes a killed replay
// from the snapshot, producing outcome counts bit-identical to an
// uninterrupted run:
//
//	soundcheck -stream -checkpoint state.ckp -checkpoint-every 1000 \
//	    -constraint fraction -min 0 -max 13 -threshold 0.8 -window time:12:5 series.csv
//	# ... killed mid-stream; resume:
//	soundcheck -stream -restore state.ckp \
//	    -constraint fraction -min 0 -max 13 -threshold 0.8 -window time:12:5 series.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"sound"
	"sound/internal/checker"
	"sound/internal/checkpoint"
	"sound/internal/stream"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the tool; exit code 0 = no violations, 2 = violations
// found, 1 = usage or input error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("soundcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		constraint = fs.String("constraint", "range", "constraint template: range, gt, nonneg, fraction, monotonic, maxdelta, stdnonzero, corr, nocorr, r2, ks, count")
		minV       = fs.Float64("min", 0, "lower bound (range, fraction)")
		maxV       = fs.Float64("max", 1, "upper bound (range, fraction)")
		threshold  = fs.Float64("threshold", 0.2, "threshold (gt, fraction, maxdelta, corr, nocorr, r2, ks)")
		window     = fs.String("window", "point", "windowing: point, global, session:<gap>, time:<size>[:<slide>], count:<size>[:<slide>]")
		cred       = fs.Float64("c", 0.95, "credibility level c")
		maxSamples = fs.Int("n", 100, "maximum sample size N")
		seed       = fs.Uint64("seed", 1, "deterministic seed")
		naive      = fs.Bool("naive", false, "use the naive (quality-ignorant) evaluation")
		streaming  = fs.Bool("stream", false, "replay the series through the streaming engine and evaluate the check online (summary only)")
		ckptPath   = fs.String("checkpoint", "", "with -stream: snapshot operator state to this file every -checkpoint-every events")
		ckptEvery  = fs.Int("checkpoint-every", 1000, "events between checkpoints (with -checkpoint)")
		restore    = fs.String("restore", "", "with -stream: resume the replay from this snapshot file")
		fuse       = fs.String("fuse", "auto", "with -stream: operator fusion in the dataflow engine: auto (engine default, overridable via SOUND_STREAM_FUSE), on, or off")
		explain    = fs.Bool("explain", false, "run the violation analysis (change points, explanations E1-E6) on the results")
		parallel   = fs.Bool("parallel", false, "fan the violation analysis out over GOMAXPROCS workers (with -explain; output is identical to sequential)")
		verbose    = fs.Bool("v", false, "print every window outcome, not just the summary")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	c, arity, err := buildConstraint(*constraint, *minV, *maxV, *threshold)
	if err != nil {
		return fail(stderr, err)
	}
	if fs.NArg() != arity {
		return fail(stderr, fmt.Errorf("constraint %q needs %d series file(s), got %d", *constraint, arity, fs.NArg()))
	}
	var ss []sound.Series
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return fail(stderr, err)
		}
		s, err := sound.ReadCSV(f)
		f.Close()
		if err != nil {
			return fail(stderr, fmt.Errorf("%s: %w", path, err))
		}
		ss = append(ss, s)
	}

	win, err := buildWindow(*window)
	if err != nil {
		return fail(stderr, err)
	}
	check := sound.Check{Name: *constraint, Constraint: c, SeriesNames: fs.Args(), Window: win}

	if *explain && (*naive || *streaming) {
		return fail(stderr, fmt.Errorf("-explain needs the full SOUND evaluation (drop -naive/-stream)"))
	}
	if (*ckptPath != "" || *restore != "") && !*streaming {
		return fail(stderr, fmt.Errorf("-checkpoint/-restore need -stream"))
	}
	switch *fuse {
	case "auto", "on", "off":
	default:
		return fail(stderr, fmt.Errorf("-fuse %q out of range (want auto, on, or off)", *fuse))
	}
	if *ckptPath != "" && *ckptEvery <= 0 {
		return fail(stderr, fmt.Errorf("-checkpoint-every %d out of range (want >= 1)", *ckptEvery))
	}

	counts := map[sound.Outcome]int{}
	var results []sound.Result
	if *streaming {
		var err error
		counts, err = runStream(check, ss, sound.Params{Credibility: *cred, MaxSamples: *maxSamples}, *seed, *naive, *ckptPath, *ckptEvery, *restore, *fuse)
		if err != nil {
			return fail(stderr, err)
		}
	} else if *naive {
		tuples := win.Windows(ss)
		for _, tuple := range tuples {
			o := sound.EvaluateNaive(c, tuple)
			counts[o]++
			if *verbose {
				fmt.Fprintf(stdout, "window %d [%g, %g): %v\n", tuple.Index, tuple.Start, tuple.End, o)
			}
		}
	} else {
		eval, err := sound.NewEvaluator(sound.Params{Credibility: *cred, MaxSamples: *maxSamples}, *seed)
		if err != nil {
			return fail(stderr, err)
		}
		results, err = check.Run(eval, ss)
		if err != nil {
			return fail(stderr, err)
		}
		for _, r := range results {
			counts[r.Outcome]++
			if *verbose {
				fmt.Fprintf(stdout, "window %d [%g, %g): %v  P(viol)=%.3f  samples=%d\n",
					r.Window.Index, r.Window.Start, r.Window.End, r.Outcome, r.ViolationProb, r.Samples)
			}
		}
	}
	total := counts[sound.Satisfied] + counts[sound.Violated] + counts[sound.Inconclusive]
	fmt.Fprintf(stdout, "%s: %d windows — ⊤ %d, ⊥ %d, ⊣ %d\n",
		check.Name, total, counts[sound.Satisfied], counts[sound.Violated], counts[sound.Inconclusive])
	if *explain {
		params := sound.Params{Credibility: *cred, MaxSamples: *maxSamples}
		a, err := sound.NewAnalyzer(params, *seed)
		if err != nil {
			return fail(stderr, err)
		}
		var sum *sound.Summary
		if *parallel {
			sum, err = sound.SummarizeParallel(context.Background(), check, results, a, nil, *cred, 0)
			if err != nil {
				return fail(stderr, err)
			}
		} else {
			sum = sound.Summarize(check, results, a, nil, *cred)
		}
		fmt.Fprint(stdout, sum.String())
	}
	if counts[sound.Violated] > 0 {
		return 2
	}
	return 0
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "soundcheck:", err)
	return 1
}

// runStream replays the series through the dataflow engine and evaluates
// the check with the generic online stream operator: events from all
// input files are merged in time order into one source, keyed by file
// path, and routed to the check inputs by key. The outcome counts match
// what the check's windows produce online.
//
// With ckptPath the source requests a drain-to-barrier snapshot every
// `every` events and atomically writes the operator state plus the
// replay offset; with restorePath the state is loaded back, the first
// offset events are skipped, and the resumed replay is bit-identical to
// an uninterrupted one.
func runStream(check sound.Check, ss []sound.Series, params sound.Params, seed uint64, naive bool, ckptPath string, every int, restorePath, fuse string) (map[sound.Outcome]int, error) {
	out := &checker.StreamOutcomes{}
	cfg := checker.StreamCheck{
		Check:   check,
		Params:  params,
		Seed:    seed,
		Naive:   naive,
		Forward: true,
		Out:     out,
		Route:   checker.ByInputKeys(check.SeriesNames...),
	}
	var reg *checker.StreamRegistry
	if ckptPath != "" || restorePath != "" {
		reg = checker.NewStreamRegistry()
		cfg.Registry = reg
	}
	factory, err := checker.NewStreamChecker(cfg)
	if err != nil {
		return nil, err
	}
	fp := streamFingerprint(check, params, seed, naive)
	var offset uint64
	if restorePath != "" {
		data, err := os.ReadFile(restorePath)
		if err != nil {
			return nil, err
		}
		dec, err := checkpoint.NewDecoder(data)
		if err != nil {
			return nil, err
		}
		if got := dec.String(); dec.Err() == nil && got != fp {
			return nil, fmt.Errorf("snapshot %s was written by a different run configuration (%q, this run is %q)", restorePath, got, fp)
		}
		offset = dec.Uvarint()
		if err := reg.DecodeFrom(dec); err != nil {
			return nil, fmt.Errorf("%s: %w", restorePath, err)
		}
	}

	// Time-ordered merge of the input series; sent counts the logical
	// event position so a restored replay skips what the snapshot run
	// already processed.
	var snapErr error
	replay := func(emit stream.EmitFunc, barrier stream.BarrierFunc) {
		idx := make([]int, len(ss))
		var sent uint64
		for {
			best := -1
			for i, s := range ss {
				if idx[i] < len(s) && (best < 0 || s[idx[i]].T < ss[best][idx[best]].T) {
					best = i
				}
			}
			if best < 0 {
				return
			}
			p := ss[best][idx[best]]
			idx[best]++
			sent++
			if sent <= offset {
				continue
			}
			emit(stream.Event{Time: p.T, Key: check.SeriesNames[best], Value: p.V, SigUp: p.SigUp, SigDown: p.SigDown})
			if ckptPath != "" && every > 0 && sent%uint64(every) == 0 {
				pos := sent
				barrier(func() {
					if err := writeSnapshot(ckptPath, fp, pos, reg); err != nil && snapErr == nil {
						snapErr = err
					}
				})
			}
		}
	}
	g := stream.NewGraph()
	// Fusion is a scheduling choice with bit-identical results either
	// way (DESIGN.md §4j); the flag exists to pin a mode when comparing
	// replays or debugging the engine. "auto" leaves the engine default
	// (and the SOUND_STREAM_FUSE escape hatch) in charge.
	if fuse != "auto" {
		g.SetFusion(fuse == "on")
	}
	var src *stream.Node
	if reg != nil {
		src = g.AddCheckpointSource("csv", replay)
	} else {
		src = g.AddSource("csv", func(emit stream.EmitFunc) { replay(emit, nil) })
	}
	chk := g.AddOperator("check", 1, factory)
	if err := g.Connect(src, chk); err != nil {
		return nil, err
	}
	if err := g.Connect(chk, g.AddSink("drain", nil)); err != nil {
		return nil, err
	}
	if _, err := g.Run(); err != nil {
		return nil, err
	}
	if snapErr != nil {
		return nil, fmt.Errorf("writing checkpoint: %w", snapErr)
	}
	c := out.Counts()
	return map[sound.Outcome]int{
		sound.Satisfied:    c.Satisfied,
		sound.Violated:     c.Violated,
		sound.Inconclusive: c.Inconclusive,
	}, nil
}

// streamFingerprint identifies a replay configuration: restoring a
// snapshot under different inputs, parameters, or seeds would resume
// into a stream it does not belong to, so the mismatch fails loudly.
func streamFingerprint(check sound.Check, params sound.Params, seed uint64, naive bool) string {
	return fmt.Sprintf("soundcheck|%s|%s|%v|c=%g|n=%d|seed=%d|naive=%t|%s",
		check.Name, check.Window, check.Constraint.Granularity, params.Credibility,
		params.MaxSamples, seed, naive, strings.Join(check.SeriesNames, ","))
}

// writeSnapshot persists one barrier snapshot: fingerprint, replay
// offset, and the registry payload, written to a temp file and renamed
// so a crash mid-write never corrupts the previous snapshot.
func writeSnapshot(path, fp string, offset uint64, reg *checker.StreamRegistry) error {
	enc := checkpoint.NewEncoder()
	enc.String(fp)
	enc.Uvarint(offset)
	reg.EncodeTo(enc)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, enc.Finish(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func buildConstraint(name string, min, max, threshold float64) (sound.Constraint, int, error) {
	switch name {
	case "range":
		return sound.Range(min, max), 1, nil
	case "gt":
		return sound.GreaterThan(threshold), 1, nil
	case "nonneg":
		return sound.NonNegative(), 1, nil
	case "fraction":
		return sound.FractionInRange(min, max, threshold), 1, nil
	case "monotonic":
		return sound.MonotonicIncrease(false), 1, nil
	case "maxdelta":
		return sound.MaxDelta(threshold), 1, nil
	case "stdnonzero":
		return sound.StdNonZero(), 1, nil
	case "corr":
		return sound.CorrelationAbove(threshold), 2, nil
	case "nocorr":
		return sound.CorrelationBelow(threshold), 2, nil
	case "r2":
		return sound.RSquaredAbove(threshold), 2, nil
	case "ks":
		return sound.KSDistanceBelow(threshold), 2, nil
	case "count":
		return sound.CountAtLeast(), 2, nil
	}
	return sound.Constraint{}, 0, fmt.Errorf("unknown constraint %q", name)
}

func buildWindow(spec string) (sound.Windower, error) {
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "point":
		return sound.PointWindow{}, nil
	case "global":
		return sound.GlobalWindow{}, nil
	case "session":
		if len(parts) < 2 {
			return nil, fmt.Errorf("session window needs a gap: session:<gap>")
		}
		gap, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, err
		}
		return sound.SessionWindow{Gap: gap}, nil
	case "time":
		if len(parts) < 2 {
			return nil, fmt.Errorf("time window needs a size: time:<size>[:<slide>]")
		}
		size, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, err
		}
		w := sound.TimeWindow{Size: size}
		if len(parts) > 2 {
			if w.Slide, err = strconv.ParseFloat(parts[2], 64); err != nil {
				return nil, err
			}
		}
		return w, nil
	case "count":
		if len(parts) < 2 {
			return nil, fmt.Errorf("count window needs a size: count:<size>[:<slide>]")
		}
		size, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, err
		}
		w := sound.CountWindow{Size: size}
		if len(parts) > 2 {
			if w.Slide, err = strconv.Atoi(parts[2]); err != nil {
				return nil, err
			}
		}
		return w, nil
	}
	return nil, fmt.Errorf("unknown window spec %q", spec)
}
