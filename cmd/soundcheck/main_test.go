package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeCSV(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runTool(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRangeCheckClean(t *testing.T) {
	path := writeCSV(t, "s.csv", "t,v\n1,5\n2,6\n3,7\n")
	code, out, _ := runTool(t, "-constraint", "range", "-min", "0", "-max", "10", path)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "⊤ 3") {
		t.Errorf("output = %q", out)
	}
}

func TestRangeCheckViolationExitCode(t *testing.T) {
	path := writeCSV(t, "s.csv", "t,v\n1,5\n2,600\n")
	code, out, _ := runTool(t, "-constraint", "range", "-min", "0", "-max", "10", path)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(out, "⊥ 1") {
		t.Errorf("output = %q", out)
	}
}

func TestVerboseOutput(t *testing.T) {
	path := writeCSV(t, "s.csv", "t,v\n1,5\n")
	_, out, _ := runTool(t, "-constraint", "range", "-min", "0", "-max", "10", "-v", path)
	if !strings.Contains(out, "window 0") || !strings.Contains(out, "P(viol)") {
		t.Errorf("verbose output = %q", out)
	}
}

func TestNaiveMode(t *testing.T) {
	path := writeCSV(t, "s.csv", "t,v,sig_up,sig_down\n1,10.2,0.1,5\n")
	code, out, _ := runTool(t, "-constraint", "range", "-min", "0", "-max", "10", "-naive", path)
	if code != 2 {
		t.Fatalf("naive exit = %d", code)
	}
	if !strings.Contains(out, "⊥ 1") {
		t.Errorf("naive output = %q", out)
	}
}

func TestBinaryConstraint(t *testing.T) {
	a := writeCSV(t, "a.csv", "t,v\n1,1\n2,2\n3,3\n4,4\n5,5\n6,6\n")
	b := writeCSV(t, "b.csv", "t,v\n1,2\n2,4\n3,6\n4,8\n5,10\n6,12\n")
	code, out, _ := runTool(t, "-constraint", "corr", "-threshold", "0.2", "-window", "global", a, b)
	if code != 0 {
		t.Fatalf("exit = %d (%s)", code, out)
	}
	if !strings.Contains(out, "⊤ 1") {
		t.Errorf("output = %q", out)
	}
}

func TestSessionWindowSpec(t *testing.T) {
	path := writeCSV(t, "s.csv", "t,v\n1,5\n2,5\n50,5\n51,5\n")
	code, out, _ := runTool(t, "-constraint", "maxdelta", "-threshold", "10", "-window", "session:10", path)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "2 windows") {
		t.Errorf("session windows not applied: %q", out)
	}
}

// explainCSV is a workload with a mid-series uncertainty regression, so
// the violation analysis finds at least one change point to explain.
func explainCSV(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	b.WriteString("t,v,sig_up,sig_down\n")
	for i := 0; i < 80; i++ {
		sig := 0.1
		if i >= 40 {
			sig = 6.0
		}
		fmt.Fprintf(&b, "%d,10.5,%g,%g\n", i, sig, sig)
	}
	return writeCSV(t, "explain.csv", b.String())
}

func TestExplainFlag(t *testing.T) {
	path := explainCSV(t)
	args := []string{"-constraint", "gt", "-threshold", "10", "-window", "time:10", "-explain"}
	_, seqOut, _ := runTool(t, append(args, path)...)
	if !strings.Contains(seqOut, "change point") {
		t.Fatalf("no violation summary in output: %q", seqOut)
	}
	// The parallel engine must print the bit-identical summary.
	_, parOut, _ := runTool(t, append(args, "-parallel", path)...)
	if parOut != seqOut {
		t.Errorf("-parallel output differs:\n%q\nvs\n%q", parOut, seqOut)
	}
}

func TestExplainRejectsNaiveAndStream(t *testing.T) {
	path := writeCSV(t, "s.csv", "t,v\n1,5\n")
	for _, extra := range []string{"-naive", "-stream"} {
		code, _, errOut := runTool(t, "-constraint", "range", "-min", "0", "-max", "10", "-explain", extra, path)
		if code != 1 || !strings.Contains(errOut, "explain") {
			t.Errorf("%s: exit = %d, stderr = %q", extra, code, errOut)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	path := writeCSV(t, "s.csv", "t,v\n1,5\n")
	cases := [][]string{
		{"-constraint", "bogus", path},
		{"-constraint", "corr", path},            // arity mismatch
		{"-window", "time", path},                // missing size
		{"-window", "martian:3", path},           // unknown window
		{"-constraint", "range", "/nonexistent"}, // unreadable file
		{"-c", "7", path},                        // invalid credibility
	}
	for _, args := range cases {
		code, _, errOut := runTool(t, args...)
		if code != 1 {
			t.Errorf("args %v: exit = %d, want 1 (stderr %q)", args, code, errOut)
		}
		if errOut == "" {
			t.Errorf("args %v: no error message", args)
		}
	}
}

func TestGarbageCSVRejected(t *testing.T) {
	path := writeCSV(t, "s.csv", "t,v\n1,notanumber\n")
	code, _, errOut := runTool(t, "-constraint", "range", path)
	if code != 1 || !strings.Contains(errOut, "soundcheck") {
		t.Errorf("exit = %d, stderr = %q", code, errOut)
	}
}

func TestBuildWindowVariants(t *testing.T) {
	for spec, want := range map[string]string{
		"point":      "point",
		"global":     "global",
		"time:5":     "time(size=5)",
		"time:6:2":   "time(size=6, slide=2)",
		"count:4":    "count(size=4)",
		"count:4:1":  "count(size=4, slide=1)",
		"session:10": "session(gap=10)",
	} {
		w, err := buildWindow(spec)
		if err != nil {
			t.Errorf("%s: %v", spec, err)
			continue
		}
		if w.String() != want {
			t.Errorf("%s: String() = %q, want %q", spec, w.String(), want)
		}
	}
	for _, bad := range []string{"time:x", "count:x", "session:x", "count:3:y", "time:3:y"} {
		if _, err := buildWindow(bad); err == nil {
			t.Errorf("%s accepted", bad)
		}
	}
}

func TestBuildConstraintCoverage(t *testing.T) {
	names := []string{"range", "gt", "nonneg", "fraction", "monotonic", "maxdelta",
		"stdnonzero", "corr", "nocorr", "r2", "ks", "count"}
	for _, name := range names {
		c, arity, err := buildConstraint(name, 0, 1, 0.5)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if arity != c.Arity {
			t.Errorf("%s: reported arity %d, constraint arity %d", name, arity, c.Arity)
		}
	}
}

// TestStreamQuotedCSVFallback: the streaming replay reads files through
// the zero-alloc CSV scanner, which punts on quoted fields; the cursor
// must fall back to the full reader and produce output identical to the
// unquoted equivalent.
func TestStreamQuotedCSVFallback(t *testing.T) {
	plain := writeCSV(t, "plain.csv", "t,v\n1,5\n2,6\n3,700\n4,8\n")
	quoted := writeCSV(t, "quoted.csv", "t,v\n1,5\n2,6\n\"3\",\"700\"\n4,8\n")
	args := []string{"-constraint", "range", "-min", "0", "-max", "10", "-window", "count:2", "-stream"}
	codeP, outP, _ := runTool(t, append(args, plain)...)
	codeQ, outQ, _ := runTool(t, append(args, quoted)...)
	if codeP != codeQ || outP != outQ {
		t.Errorf("quoted CSV diverged: (%d, %q) vs (%d, %q)", codeQ, outQ, codeP, outP)
	}
}

// TestStreamGarbageCSVRejected: a parse error mid-file in streaming
// mode must abort the replay with exit 1 and name the file.
func TestStreamGarbageCSVRejected(t *testing.T) {
	path := writeCSV(t, "s.csv", "t,v\n1,5\n2,notanumber\n")
	code, _, errOut := runTool(t, "-constraint", "range", "-min", "0", "-max", "10", "-stream", path)
	if code != 1 || !strings.Contains(errOut, "s.csv") {
		t.Errorf("exit = %d, stderr = %q", code, errOut)
	}
}

// TestStreamTwoFileMerge exercises the streaming two-cursor merge with
// interleaved and tied timestamps: a binary constraint only sees both
// inputs if the merge routes each file's points correctly, so a merge
// regression shows up as missing windows or a verdict flip.
func TestStreamTwoFileMerge(t *testing.T) {
	a := writeCSV(t, "a.csv", "t,v\n1,1\n2,2\n3,3\n4,4\n5,5\n6,6\n")
	b := writeCSV(t, "b.csv", "t,v\n1,2\n2,4\n3,6\n4,8\n5,10\n6,12\n")
	code, out, errOut := runTool(t, "-constraint", "corr", "-threshold", "0.2", "-window", "global", "-stream", a, b)
	if code != 0 {
		t.Fatalf("exit = %d (stdout %q, stderr %q)", code, out, errOut)
	}
	if !strings.Contains(out, "⊤ 1") {
		t.Errorf("output = %q", out)
	}
}
