// Command sounddata generates the synthetic datasets of the two
// evaluation scenarios as CSV files (t,v,sig_up,sig_down), one file per
// pipeline series, so that external tools — or soundcheck — can work on
// the same data the experiments use.
//
// Usage:
//
//	sounddata -scenario smartgrid -out data/sg
//	sounddata -scenario astro -out data/astro -seed 7
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"sound/internal/astro"
	"sound/internal/pipeline"
	"sound/internal/series"
	"sound/internal/smartgrid"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sounddata", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenario = fs.String("scenario", "smartgrid", "workload to generate: smartgrid or astro")
		out      = fs.String("out", ".", "output directory (created if missing)")
		seed     = fs.Uint64("seed", 1, "deterministic seed")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	var p *pipeline.Pipeline
	switch *scenario {
	case "smartgrid":
		p = smartgrid.Generate(smartgrid.DefaultConfig(), *seed).Pipeline
	case "astro":
		p = astro.Generate(astro.DefaultConfig(), *seed).Pipeline
	default:
		fmt.Fprintf(stderr, "sounddata: unknown scenario %q\n", *scenario)
		return 1
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(stderr, "sounddata:", err)
		return 1
	}
	for _, name := range p.Names() {
		s, _ := p.Series(name)
		path := filepath.Join(*out, name+".csv")
		if err := writeSeries(path, s); err != nil {
			fmt.Fprintln(stderr, "sounddata:", err)
			return 1
		}
		fmt.Fprintf(stdout, "%s: %d points\n", path, len(s))
	}
	return 0
}

func writeSeries(path string, s series.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := series.WriteCSV(f, s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
