package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sound/internal/series"
)

func TestGenerateSmartGridFiles(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	if code := run([]string{"-scenario", "smartgrid", "-out", dir, "-seed", "3"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errb.String())
	}
	for _, name := range []string{"plug_load", "plug_work", "household_load", "alerts"} {
		path := filepath.Join(dir, name+".csv")
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("missing %s: %v", path, err)
		}
		s, err := series.ReadCSV(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s unreadable: %v", path, err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s invalid: %v", path, err)
		}
	}
	if !strings.Contains(out.String(), "plug_load.csv") {
		t.Errorf("output = %q", out.String())
	}
}

func TestGenerateAstroFiles(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	if code := run([]string{"-scenario", "astro", "-out", dir}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errb.String())
	}
	path := filepath.Join(dir, "raw_flux.csv")
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := series.ReadCSV(f)
	f.Close()
	if err != nil || len(s) == 0 {
		t.Fatalf("raw_flux: %d points, %v", len(s), err)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	var sink bytes.Buffer
	if code := run([]string{"-scenario", "astro", "-out", dir1, "-seed", "9"}, &sink, &sink); code != 0 {
		t.Fatal("first run failed")
	}
	if code := run([]string{"-scenario", "astro", "-out", dir2, "-seed", "9"}, &sink, &sink); code != 0 {
		t.Fatal("second run failed")
	}
	a, err := os.ReadFile(filepath.Join(dir1, "filtered.csv"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir2, "filtered.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different files")
	}
}

func TestUnknownScenario(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-scenario", "mars"}, &out, &errb); code != 1 {
		t.Errorf("exit = %d", code)
	}
	if !strings.Contains(errb.String(), "unknown scenario") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestUnwritableOutput(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-out", "/proc/definitely/not/writable"}, &out, &errb); code != 1 {
		t.Errorf("exit = %d", code)
	}
}
