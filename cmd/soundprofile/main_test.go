package main

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSeries(t *testing.T, dir, name string, gen func(i int) (tt, v float64), n int) string {
	t.Helper()
	var b strings.Builder
	b.WriteString("t,v\n")
	for i := 0; i < n; i++ {
		tt, v := gen(i)
		fmt.Fprintf(&b, "%g,%g\n", tt, v)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestProfileSuggestsAndPrintsInvocations(t *testing.T) {
	dir := t.TempDir()
	load := writeSeries(t, dir, "load.csv", func(i int) (float64, float64) {
		return float64(i), 50 + 10*math.Sin(float64(i)/8)
	}, 120)
	counter := writeSeries(t, dir, "counter.csv", func(i int) (float64, float64) {
		return float64(i), float64(i * i)
	}, 120)

	var out, errb bytes.Buffer
	if code := run([]string{load, counter}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errb.String())
	}
	text := out.String()
	for _, want := range []string{
		"suggested-range(load)",
		"suggested-monotone(counter)",
		"try: soundcheck -constraint",
		"evidence:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// The printed invocation must reference the actual file path.
	if !strings.Contains(text, "counter.csv") {
		t.Error("invocation does not reference the input file")
	}
}

func TestProfileErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 1 {
		t.Errorf("no-input exit = %d", code)
	}
	if code := run([]string{"/does/not/exist.csv"}, &out, &errb); code != 1 {
		t.Errorf("missing-file exit = %d", code)
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.csv")
	os.WriteFile(bad, []byte("t,v\n1,zap\n"), 0o644)
	if code := run([]string{bad}, &out, &errb); code != 1 {
		t.Errorf("garbage-file exit = %d", code)
	}
}

func TestProfileNoStructure(t *testing.T) {
	dir := t.TempDir()
	tiny := writeSeries(t, dir, "tiny.csv", func(i int) (float64, float64) {
		return float64(i), float64(i)
	}, 3)
	var out, errb bytes.Buffer
	if code := run([]string{tiny}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out.String(), "no suggestions") {
		t.Errorf("output = %q", out.String())
	}
}
