// Command soundprofile suggests sanity constraints from trusted CSV data
// series (t,v[,sig_up[,sig_down]]), the constraint-definition assist the
// paper motivates in §II. Each suggestion prints the equivalent
// soundcheck invocation so accepting one is a copy-paste.
//
// Usage:
//
//	soundprofile load.csv work.csv flux.csv
//	soundprofile -mincorr 0.5 a.csv b.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"sound/internal/core"
	"sound/internal/profile"
	"sound/internal/series"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("soundprofile", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		minCorr  = fs.Float64("mincorr", 0.7, "minimum |correlation| to suggest a correlation check")
		margin   = fs.Float64("margin", 1.5, "range margin in multiples of the IQR")
		tolerate = fs.Float64("monotone-tolerance", 0, "fraction of decreasing steps tolerated for monotonicity")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "soundprofile: no input files")
		return 1
	}
	data := map[string]series.Series{}
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(stderr, "soundprofile:", err)
			return 1
		}
		s, err := series.ReadCSV(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "soundprofile: %s: %v\n", path, err)
			return 1
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		data[name] = s
	}

	sugs := profile.Suggest(data, profile.Options{
		RangeMargin:       *margin,
		MinCorrelation:    *minCorr,
		MonotoneTolerance: *tolerate,
	})
	if len(sugs) == 0 {
		fmt.Fprintln(stdout, "no suggestions (series too short or structureless)")
		return 0
	}
	for _, sug := range sugs {
		fmt.Fprintf(stdout, "[%.2f] %s\n       evidence: %s\n       try: %s\n",
			sug.Score, sug.Check.Name, sug.Evidence, soundcheckInvocation(sug, fs.Args(), data))
	}
	return 0
}

// soundcheckInvocation renders the equivalent soundcheck command line.
func soundcheckInvocation(sug profile.Suggestion, paths []string, data map[string]series.Series) string {
	pathOf := func(name string) string {
		for _, p := range paths {
			if strings.TrimSuffix(filepath.Base(p), filepath.Ext(p)) == name {
				return p
			}
		}
		return name + ".csv"
	}
	c := sug.Check.Constraint
	var b strings.Builder
	b.WriteString("soundcheck ")
	switch {
	case strings.HasPrefix(c.Name, "range"):
		var lo, hi float64
		fmt.Sscanf(c.Name, "range[%g,%g]", &lo, &hi)
		fmt.Fprintf(&b, "-constraint range -min %g -max %g", lo, hi)
	case strings.HasPrefix(c.Name, "monotonic"):
		b.WriteString("-constraint monotonic")
	case c.Name == "non-negative":
		b.WriteString("-constraint nonneg")
	case strings.HasPrefix(c.Name, "corr>"):
		var t float64
		fmt.Sscanf(c.Name, "corr>[%g]", &t)
		fmt.Fprintf(&b, "-constraint corr -threshold %g", t)
	default:
		fmt.Fprintf(&b, "-constraint %s", c.Name)
	}
	switch w := sug.Check.Window.(type) {
	case core.CountWindow:
		fmt.Fprintf(&b, " -window count:%d", w.Size)
	case core.TimeWindow:
		fmt.Fprintf(&b, " -window time:%g", w.Size)
	}
	for _, name := range sug.Check.SeriesNames {
		fmt.Fprintf(&b, " %s", pathOf(name))
	}
	return b.String()
}
