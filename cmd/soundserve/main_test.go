package main

import (
	"bytes"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func runTool(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestSelftest runs the full wire-path parity selftest — TCP frames and
// HTTP NDJSON against the single-process evaluation — on the repo's
// pinned fixture.
func TestSelftest(t *testing.T) {
	code, out, errOut := runTool(t, "-selftest", "-fixture", "../../testdata/gapped_borderline.csv")
	if code != 0 {
		t.Fatalf("selftest exit = %d\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	if !strings.Contains(out, "selftest ok") {
		t.Errorf("selftest output = %q", out)
	}
	// The fixture goldens are pinned elsewhere (pin_test.go); spot-check
	// one so a silently-empty replay cannot pass.
	if !strings.Contains(out, "sliding") {
		t.Errorf("selftest output missing the sliding check: %q", out)
	}
}

// TestSelftestCustomChecks exercises the -check grammar path through
// the selftest.
func TestSelftestCustomChecks(t *testing.T) {
	code, out, errOut := runTool(t, "-selftest", "-fixture", "../../testdata/gapped_borderline.csv",
		"-check", "range;min=0;max=13;window=time:10", "-shards", "2", "-batch", "16")
	if code != 0 {
		t.Fatalf("exit = %d\nstdout: %s\nstderr: %s", code, out, errOut)
	}
	if !strings.Contains(out, "range") {
		t.Errorf("output = %q", out)
	}
}

// syncBuffer is a bytes.Buffer safe for the concurrent writer (run's
// stderr) and reader (the test polling for the listen address).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDrainRequestStopsServer pins that a client's POST /drain shuts
// the whole process down — not just the ingest path — even with no TCP
// listener whose closure would otherwise wake the main loop.
func TestDrainRequestStopsServer(t *testing.T) {
	var out bytes.Buffer
	var errb syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-http", "127.0.0.1:0", "-check", "range;min=0;max=100;window=time:60"}, &out, &errb)
	}()

	addrRe := regexp.MustCompile(`http on (127\.0\.0\.1:\d+)`)
	var addr string
	for deadline := time.Now().Add(5 * time.Second); addr == ""; {
		if m := addrRe.FindStringSubmatch(errb.String()); m != nil {
			addr = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("server never announced its address: %q", errb.String())
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	resp, err := http.Post("http://"+addr+"/ingest", "application/x-ndjson",
		strings.NewReader(`{"key":"k","t":0,"v":5}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Post("http://"+addr+"/drain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("exit = %d\nstderr: %s", code, errb.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit after POST /drain")
	}
	if !strings.Contains(errb.String(), "drained by request") {
		t.Errorf("stderr = %q", errb.String())
	}
	// The final stats snapshot still prints on this path.
	if !strings.Contains(out.String(), `"consumed": 1`) {
		t.Errorf("final stats = %q", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                                      // no checks
		{"-check", "range"},                     // no listeners
		{"-http", ":0", "-check", "frobnicate"}, // unknown constraint
		{"-http", ":0", "-check", "range", "-check", "range"}, // duplicate name
		{"-selftest"}, // missing fixture
		{"-selftest", "-fixture", "/nonexistent.csv"},
		{"stray-arg"},
	}
	for _, args := range cases {
		code, _, errOut := runTool(t, args...)
		if code != 1 {
			t.Errorf("args %v: exit = %d, want 1 (stderr %q)", args, code, errOut)
		}
		if errOut == "" {
			t.Errorf("args %v: no error message", args)
		}
	}
}
