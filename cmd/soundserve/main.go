// Command soundserve runs the always-on checking server: it accepts
// events over TCP (length-prefixed binary frames) and HTTP (NDJSON),
// fans them out to per-shard streaming pipelines by the engine's stable
// key hash, and evaluates the registered checks online with live
// counters and a streaming outcome feed.
//
// Checks are registered with repeatable -check specs (see
// internal/ingest.ParseCheck for the grammar):
//
//	soundserve -http :7071 -check 'range;min=0;max=100;window=time:60'
//	soundserve -tcp :7070 -http :7071 \
//	    -check 'name=lat-vs-load;constraint=corr;threshold=0.3;window=time:120;route=inputs:latency,load' \
//	    -ttl 3600 -max-groups 100000
//
// SIGINT/SIGTERM drains gracefully: intake stops, every shard flushes
// its final windows, and the final counter snapshot is printed.
//
// -selftest replays a CSV fixture through both wire paths (TCP frames,
// HTTP NDJSON) against a fresh server each and diffs the verdict
// counters against a direct single-process evaluation of the same
// checks — the shard fan-in parity contract, checked end to end:
//
//	soundserve -selftest -fixture testdata/gapped_borderline.csv
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"sound"
	"sound/internal/checker"
	"sound/internal/ingest"
	"sound/internal/stream"
	"sound/internal/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("soundserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tcpAddr    = fs.String("tcp", "", "listen address for binary-frame ingest (e.g. :7070; empty disables)")
		httpAddr   = fs.String("http", "", "listen address for the HTTP surface: POST /ingest, GET /stats, GET /outcomes, POST /drain (empty disables)")
		shards     = fs.Int("shards", 4, "independent pipeline shards; events route by the engine's stable key hash")
		batch      = fs.Int("batch", 64, "transport frame size inside the shard pipelines")
		cred       = fs.Float64("c", 0.95, "credibility level c")
		maxSamples = fs.Int("n", 100, "maximum sample size N")
		seed       = fs.Uint64("seed", 1, "deterministic seed (per-check seed=... overrides)")
		ttl        = fs.Float64("ttl", 0, "evict window groups idle for this much event time (0 keeps all groups)")
		maxGroups  = fs.Int("max-groups", 0, "cap live window groups per check worker, LRU-evicted (0 is unlimited)")
		selftest   = fs.Bool("selftest", false, "replay -fixture through both wire paths and diff against a single-process evaluation")
		fixture    = fs.String("fixture", "", "CSV fixture for -selftest (t,v[,sig_up[,sig_down]])")
	)
	var specs []string
	fs.Func("check", "check registration, repeatable: '<constraint>[;key=value;...]', e.g. 'range;min=0;max=100;window=time:60'", func(s string) error {
		specs = append(specs, s)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if fs.NArg() != 0 {
		return fail(stderr, fmt.Errorf("unexpected arguments %v", fs.Args()))
	}
	params := sound.Params{Credibility: *cred, MaxSamples: *maxSamples}
	evict := checker.EvictionPolicy{TTL: *ttl, MaxGroups: *maxGroups}

	if *selftest {
		return runSelftest(*fixture, specs, params, *seed, evict, *shards, *batch, stdout, stderr)
	}

	if len(specs) == 0 {
		return fail(stderr, fmt.Errorf("no checks registered (repeatable -check 'range;min=0;max=100;window=time:60')"))
	}
	if *tcpAddr == "" && *httpAddr == "" {
		return fail(stderr, fmt.Errorf("nothing to listen on (set -tcp and/or -http)"))
	}
	cfgs, err := buildChecks(specs, params, *seed, evict)
	if err != nil {
		return fail(stderr, err)
	}
	srv, err := ingest.NewServer(ingest.Config{Shards: *shards, BatchSize: *batch, Checks: cfgs})
	if err != nil {
		return fail(stderr, err)
	}

	errc := make(chan error, 2)
	var hsrv *http.Server
	if *tcpAddr != "" {
		ln, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stderr, "soundserve: frame ingest on %s\n", ln.Addr())
		go func() { errc <- srv.ServeTCP(ln) }()
	}
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stderr, "soundserve: http on %s\n", ln.Addr())
		hsrv = &http.Server{Handler: srv.Handler()}
		go func() {
			if err := hsrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				errc <- err
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(stderr, "soundserve: %v, draining\n", s)
	case err := <-errc:
		if err != nil && err != ingest.ErrDraining {
			fmt.Fprintln(stderr, "soundserve:", err)
		}
	case <-srv.Drained():
		// A client's POST /drain quiesced the server; shut down the
		// process too, same as the signal path.
		fmt.Fprintln(stderr, "soundserve: drained by request")
	}
	drainErr := srv.Drain()
	if hsrv != nil {
		hsrv.Close()
	}
	st := srv.Stats()
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	enc.Encode(st)
	if drainErr != nil {
		return fail(stderr, drainErr)
	}
	return 0
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "soundserve:", err)
	return 1
}

func buildChecks(specs []string, params sound.Params, seed uint64, evict checker.EvictionPolicy) ([]ingest.CheckConfig, error) {
	var cfgs []ingest.CheckConfig
	names := map[string]bool{}
	for _, spec := range specs {
		cfg, err := ingest.ParseCheck(spec, params, seed, evict)
		if err != nil {
			return nil, err
		}
		if names[cfg.Name] {
			return nil, fmt.Errorf("duplicate check name %q (disambiguate with name=...)", cfg.Name)
		}
		names[cfg.Name] = true
		cfgs = append(cfgs, cfg)
	}
	return cfgs, nil
}

// selftestSpecs is the default -selftest suite when no -check is given:
// the pinned window trio over a fraction-in-range constraint, the same
// shapes the repo's stream goldens pin.
var selftestSpecs = []string{
	"fraction;min=0;max=13;threshold=0.8;window=time:12:5;name=sliding",
	"fraction;min=0;max=13;threshold=0.8;window=time:9;name=tumbling",
	"fraction;min=0;max=13;threshold=0.8;window=count:8:3;name=count",
}

type counts3 = [3]int // satisfied, violated, inconclusive

// runSelftest replays the fixture through a real TCP loopback (binary
// frames) and a real HTTP loopback (NDJSON), each against a fresh
// server, and requires both final counter snapshots to match a direct
// single-process evaluation of the same checks bit for bit.
func runSelftest(fixture string, specs []string, params sound.Params, seed uint64, evict checker.EvictionPolicy, shards, batch int, stdout, stderr io.Writer) int {
	if fixture == "" {
		return fail(stderr, fmt.Errorf("-selftest needs -fixture FILE.csv"))
	}
	f, err := os.Open(fixture)
	if err != nil {
		return fail(stderr, err)
	}
	pts, err := sound.ReadCSV(f)
	f.Close()
	if err != nil {
		return fail(stderr, fmt.Errorf("%s: %w", fixture, err))
	}
	// One key: every event lands on one shard and the evaluating worker
	// claims the same seed slot as the reference's single worker, so the
	// verdict counts must be bit-identical, not merely close.
	evs := make([]stream.Event, len(pts))
	for i, p := range pts {
		evs[i] = stream.Event{Time: p.T, Key: "k", Value: p.V, SigUp: p.SigUp, SigDown: p.SigDown}
	}
	if len(specs) == 0 {
		specs = selftestSpecs
	}
	cfgs, err := buildChecks(specs, params, seed, evict)
	if err != nil {
		return fail(stderr, err)
	}
	ref, err := referenceCounts(cfgs, evs)
	if err != nil {
		return fail(stderr, err)
	}
	tcp, err := selftestTCP(cfgs, evs, shards, batch)
	if err != nil {
		return fail(stderr, fmt.Errorf("tcp pass: %w", err))
	}
	httpc, err := selftestHTTP(cfgs, evs, shards, batch)
	if err != nil {
		return fail(stderr, fmt.Errorf("http pass: %w", err))
	}
	ok := true
	for _, cfg := range cfgs {
		r, tc, hc := ref[cfg.Name], tcp[cfg.Name], httpc[cfg.Name]
		status := "ok"
		if tc != r || hc != r {
			status = "MISMATCH"
			ok = false
		}
		fmt.Fprintf(stdout, "selftest %-10s ref ⊤%d ⊥%d ⊣%d  tcp ⊤%d ⊥%d ⊣%d  http ⊤%d ⊥%d ⊣%d  %s\n",
			cfg.Name, r[0], r[1], r[2], tc[0], tc[1], tc[2], hc[0], hc[1], hc[2], status)
	}
	if !ok {
		fmt.Fprintln(stderr, "soundserve: selftest FAILED: wire paths diverged from the single-process evaluation")
		return 1
	}
	fmt.Fprintf(stdout, "selftest ok: %d events × %d checks, tcp and http match the single-process evaluation\n", len(evs), len(cfgs))
	return 0
}

// referenceCounts evaluates each check single-process — one operator
// instance fed in order, no server, no sharding — producing the ground
// truth the wire paths must reproduce.
func referenceCounts(cfgs []ingest.CheckConfig, evs []stream.Event) (map[string]counts3, error) {
	out := map[string]counts3{}
	drop := func(stream.Event) {}
	for _, cc := range cfgs {
		o := &checker.StreamOutcomes{}
		factory, err := checker.NewStreamChecker(checker.StreamCheck{
			Check: cc.Check, Params: cc.Params, Seed: cc.Seed, Naive: cc.Naive,
			Out: o, Route: cc.Route, Evict: cc.Evict,
		})
		if err != nil {
			return nil, err
		}
		p := factory()
		if wi, ok := p.(stream.WorkerIndexed); ok {
			wi.SetWorkerIndex(0)
		}
		for _, ev := range evs {
			p.Process(ev, drop)
		}
		p.Flush(drop)
		c := o.Counts()
		out[cc.Name] = counts3{c.Satisfied, c.Violated, c.Inconclusive}
	}
	return out, nil
}

func statsCounts(st ingest.Stats, nEvents int) (map[string]counts3, error) {
	if st.Ingested != int64(nEvents) || st.Consumed != int64(nEvents) {
		return nil, fmt.Errorf("ingested %d consumed %d, want %d each", st.Ingested, st.Consumed, nEvents)
	}
	if st.Dropped != 0 || st.DecodeErrors != 0 {
		return nil, fmt.Errorf("dropped %d, decode errors %d", st.Dropped, st.DecodeErrors)
	}
	out := map[string]counts3{}
	for _, cs := range st.Checks {
		out[cs.Name] = counts3{cs.Satisfied, cs.Violated, cs.Inconclusive}
	}
	return out, nil
}

// selftestTCP replays the events as binary frames over a real loopback
// TCP connection.
func selftestTCP(cfgs []ingest.CheckConfig, evs []stream.Event, shards, batch int) (map[string]counts3, error) {
	srv, err := ingest.NewServer(ingest.Config{Shards: shards, BatchSize: batch, Checks: cfgs})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.ServeTCP(ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(conn)
	enc := wire.NewFrameEncoder(bw)
	frame := max(batch, 1)
	for off := 0; off < len(evs); off += frame {
		if err := enc.Encode(evs[off:min(off+frame, len(evs))]); err != nil {
			return nil, err
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, err
	}
	if err := conn.Close(); err != nil {
		return nil, err
	}
	if err := srv.Drain(); err != nil {
		return nil, err
	}
	return statsCounts(srv.Stats(), len(evs))
}

// selftestHTTP replays the events as one NDJSON POST against a fresh
// server listening on a real loopback socket, then drains over HTTP.
func selftestHTTP(cfgs []ingest.CheckConfig, evs []stream.Event, shards, batch int) (map[string]counts3, error) {
	srv, err := ingest.NewServer(ingest.Config{Shards: shards, BatchSize: batch, Checks: cfgs})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hsrv := &http.Server{Handler: srv.Handler()}
	go hsrv.Serve(ln)
	defer hsrv.Close()
	base := "http://" + ln.Addr().String()

	var body []byte
	for _, ev := range evs {
		body = wire.AppendNDJSON(body, ev)
	}
	resp, err := http.Post(base+"/ingest", "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	var ack struct {
		Ingested int    `json:"ingested"`
		Error    string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ack)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK || ack.Ingested != len(evs) {
		return nil, fmt.Errorf("ingest: status %d, ingested %d of %d (%s)", resp.StatusCode, ack.Ingested, len(evs), ack.Error)
	}
	resp, err = http.Post(base+"/drain", "", nil)
	if err != nil {
		return nil, err
	}
	var st ingest.Stats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if st.Err != "" {
		return nil, fmt.Errorf("drain: %s", st.Err)
	}
	return statsCounts(st, len(evs))
}
