// Command soundserve runs the always-on checking server: it accepts
// events over TCP (length-prefixed binary frames) and HTTP (NDJSON),
// fans them out to per-shard streaming pipelines by the engine's stable
// key hash, and evaluates the registered checks online with live
// counters and a streaming outcome feed.
//
// Checks are registered with repeatable -check specs (see
// internal/ingest.ParseCheck for the grammar):
//
//	soundserve -http :7071 -check 'range;min=0;max=100;window=time:60'
//	soundserve -tcp :7070 -http :7071 \
//	    -check 'name=lat-vs-load;constraint=corr;threshold=0.3;window=time:120;route=inputs:latency,load' \
//	    -ttl 3600 -max-groups 100000
//
// SIGINT/SIGTERM drains gracefully: intake stops, every shard flushes
// its final windows, and the final counter snapshot is printed.
//
// -selftest replays a CSV fixture through both wire paths (TCP frames,
// HTTP NDJSON) against a fresh server each and diffs the verdict
// counters against a direct single-process evaluation of the same
// checks — the shard fan-in parity contract, checked end to end:
//
//	soundserve -selftest -fixture testdata/gapped_borderline.csv
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"sound"
	"sound/internal/checker"
	"sound/internal/ingest"
	"sound/internal/stream"
	"sound/internal/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("soundserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tcpAddr    = fs.String("tcp", "", "listen address for binary-frame ingest (e.g. :7070; empty disables)")
		httpAddr   = fs.String("http", "", "listen address for the HTTP surface: POST /ingest, GET /stats, GET /outcomes, POST /drain (empty disables)")
		shards     = fs.Int("shards", 4, "independent pipeline shards; events route by the engine's stable key hash")
		batch      = fs.Int("batch", 64, "transport frame size inside the shard pipelines")
		cred       = fs.Float64("c", 0.95, "credibility level c")
		maxSamples = fs.Int("n", 100, "maximum sample size N")
		seed       = fs.Uint64("seed", 1, "deterministic seed (per-check seed=... overrides)")
		ttl        = fs.Float64("ttl", 0, "evict window groups idle for this much event time (0 keeps all groups)")
		maxGroups  = fs.Int("max-groups", 0, "cap live window groups per check worker, LRU-evicted (0 is unlimited)")
		maxChecks  = fs.Int("max-checks", 0, "cap concurrently registered checks — admission quota for POST /checks (0 is unlimited)")
		selftest   = fs.Bool("selftest", false, "replay -fixture through both wire paths and diff against a single-process evaluation")
		fixture    = fs.String("fixture", "", "CSV fixture for -selftest (t,v[,sig_up[,sig_down]])")
	)
	var specs []string
	fs.Func("check", "check registration, repeatable: '<constraint>[;key=value;...]', e.g. 'range;min=0;max=100;window=time:60'", func(s string) error {
		specs = append(specs, s)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if fs.NArg() != 0 {
		return fail(stderr, fmt.Errorf("unexpected arguments %v", fs.Args()))
	}
	params := sound.Params{Credibility: *cred, MaxSamples: *maxSamples}
	evict := checker.EvictionPolicy{TTL: *ttl, MaxGroups: *maxGroups}

	if *selftest {
		return runSelftest(*fixture, specs, params, *seed, evict, *shards, *batch, stdout, stderr)
	}

	if len(specs) == 0 && *httpAddr == "" {
		return fail(stderr, fmt.Errorf("no checks registered (repeatable -check '...', or enable -http for POST /checks registration)"))
	}
	if *tcpAddr == "" && *httpAddr == "" {
		return fail(stderr, fmt.Errorf("nothing to listen on (set -tcp and/or -http)"))
	}
	cfgs, err := buildChecks(specs, params, *seed, evict)
	if err != nil {
		return fail(stderr, err)
	}
	srv, err := ingest.NewServer(ingest.Config{
		Shards: *shards, BatchSize: *batch, Checks: cfgs,
		MaxChecks: *maxChecks, Evict: evict,
		DefaultParams: params, DefaultSeed: *seed,
	})
	if err != nil {
		return fail(stderr, err)
	}

	errc := make(chan error, 2)
	var hsrv *http.Server
	if *tcpAddr != "" {
		ln, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stderr, "soundserve: frame ingest on %s\n", ln.Addr())
		go func() { errc <- srv.ServeTCP(ln) }()
	}
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return fail(stderr, err)
		}
		fmt.Fprintf(stderr, "soundserve: http on %s\n", ln.Addr())
		hsrv = &http.Server{Handler: srv.Handler()}
		go func() {
			if err := hsrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				errc <- err
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(stderr, "soundserve: %v, draining\n", s)
	case err := <-errc:
		if err != nil && err != ingest.ErrDraining {
			fmt.Fprintln(stderr, "soundserve:", err)
		}
	case <-srv.Drained():
		// A client's POST /drain quiesced the server; shut down the
		// process too, same as the signal path.
		fmt.Fprintln(stderr, "soundserve: drained by request")
	}
	drainErr := srv.Drain()
	if hsrv != nil {
		hsrv.Close()
	}
	st := srv.Stats()
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	enc.Encode(st)
	if drainErr != nil {
		return fail(stderr, drainErr)
	}
	return 0
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "soundserve:", err)
	return 1
}

func buildChecks(specs []string, params sound.Params, seed uint64, evict checker.EvictionPolicy) ([]ingest.CheckConfig, error) {
	var cfgs []ingest.CheckConfig
	names := map[string]bool{}
	for _, spec := range specs {
		cfg, err := ingest.ParseCheck(spec, params, seed, evict)
		if err != nil {
			return nil, err
		}
		if names[cfg.Name] {
			return nil, fmt.Errorf("duplicate check name %q (disambiguate with name=...)", cfg.Name)
		}
		names[cfg.Name] = true
		cfgs = append(cfgs, cfg)
	}
	return cfgs, nil
}

// selftestSpecs is the default -selftest suite when no -check is given:
// the pinned window trio over a fraction-in-range constraint (the same
// shapes the repo's stream goldens pin), plus two more constraints on
// the tumbling window — with "tumbling" they form a multiplexing bucket
// of three co-window checks exercising the shared-draw path end to end.
var selftestSpecs = []string{
	"fraction;min=0;max=13;threshold=0.8;window=time:12:5;name=sliding",
	"fraction;min=0;max=13;threshold=0.8;window=time:9;name=tumbling",
	"fraction;min=0;max=13;threshold=0.8;window=count:8:3;name=count",
	"range;min=-2;max=14;window=time:9;name=shared-range",
	"maxdelta;threshold=9;window=time:9;name=shared-delta",
}

type counts3 = [3]int // satisfied, violated, inconclusive

// runSelftest replays the fixture through a real TCP loopback (binary
// frames) and a real HTTP loopback (NDJSON), each against a fresh
// server, and requires both final counter snapshots to match a direct
// single-process evaluation of the same checks bit for bit.
func runSelftest(fixture string, specs []string, params sound.Params, seed uint64, evict checker.EvictionPolicy, shards, batch int, stdout, stderr io.Writer) int {
	if fixture == "" {
		return fail(stderr, fmt.Errorf("-selftest needs -fixture FILE.csv"))
	}
	f, err := os.Open(fixture)
	if err != nil {
		return fail(stderr, err)
	}
	pts, err := sound.ReadCSV(f)
	f.Close()
	if err != nil {
		return fail(stderr, fmt.Errorf("%s: %w", fixture, err))
	}
	// One key: every event lands on one shard and the evaluating worker
	// claims the same seed slot as the reference's single worker, so the
	// verdict counts must be bit-identical, not merely close.
	evs := make([]stream.Event, len(pts))
	for i, p := range pts {
		evs[i] = stream.Event{Time: p.T, Key: "k", Value: p.V, SigUp: p.SigUp, SigDown: p.SigDown}
	}
	if len(specs) == 0 {
		specs = selftestSpecs
	}
	cfgs, err := buildChecks(specs, params, seed, evict)
	if err != nil {
		return fail(stderr, err)
	}
	ref, refGroups, err := referenceCounts(cfgs, evs)
	if err != nil {
		return fail(stderr, err)
	}
	tcp, tcpGroups, err := selftestTCP(cfgs, evs, shards, batch)
	if err != nil {
		return fail(stderr, fmt.Errorf("tcp pass: %w", err))
	}
	httpc, httpGroups, err := selftestHTTP(specs, params, seed, evict, evs, shards, batch)
	if err != nil {
		return fail(stderr, fmt.Errorf("http pass: %w", err))
	}
	ok := true
	for _, cfg := range cfgs {
		r, tc, hc := ref[cfg.Name], tcp[cfg.Name], httpc[cfg.Name]
		status := "ok"
		if tc != r || hc != r {
			status = "MISMATCH"
			ok = false
		}
		fmt.Fprintf(stdout, "selftest %-12s ref ⊤%d ⊥%d ⊣%d  tcp ⊤%d ⊥%d ⊣%d  http ⊤%d ⊥%d ⊣%d  %s\n",
			cfg.Name, r[0], r[1], r[2], tc[0], tc[1], tc[2], hc[0], hc[1], hc[2], status)
	}
	for _, g := range refGroups {
		fmt.Fprintf(stdout, "selftest group %v shared=%v windows=%d draws=%d extraction-hit=%.2f\n",
			g.Checks, g.Shared, g.Windows, g.Draws, g.SharedExtractionHitRatio)
	}
	if err := sameGroups(refGroups, tcpGroups); err != nil {
		fmt.Fprintln(stderr, "soundserve: selftest FAILED: tcp group stats:", err)
		ok = false
	}
	if err := sameGroups(refGroups, httpGroups); err != nil {
		fmt.Fprintln(stderr, "soundserve: selftest FAILED: http group stats:", err)
		ok = false
	}
	if !ok {
		fmt.Fprintln(stderr, "soundserve: selftest FAILED: wire paths diverged from the single-process evaluation")
		return 1
	}
	fmt.Fprintf(stdout, "selftest ok: %d events × %d checks, tcp and http match the single-process evaluation\n", len(evs), len(cfgs))
	return 0
}

// referenceCounts evaluates the whole suite single-process — ONE
// multiplexed operator instance fed in order, no server, no sharding —
// producing the ground truth the wire paths must reproduce. Valid as a
// bit-exact reference because every selftest event shares one key, so
// the server's fan-in delivers the same ordered stream to one worker.
func referenceCounts(cfgs []ingest.CheckConfig, evs []stream.Event) (map[string]counts3, []checker.GroupStat, error) {
	mux := checker.NewMux(false, checker.EvictionPolicy{})
	outs := make(map[string]*checker.StreamOutcomes, len(cfgs))
	for _, cc := range cfgs {
		o := &checker.StreamOutcomes{}
		outs[cc.Name] = o
		routeID := cc.RouteSpec
		if cc.Route == nil {
			routeID = "event"
		}
		if err := mux.Register(checker.MuxCheck{
			Name: cc.Name, Check: cc.Check, Params: cc.Params, Seed: cc.Seed,
			Naive: cc.Naive, Route: cc.Route, RouteID: routeID, Out: o,
		}); err != nil {
			return nil, nil, err
		}
	}
	p := mux.Factory()()
	if wi, ok := p.(stream.WorkerIndexed); ok {
		wi.SetWorkerIndex(0)
	}
	drop := func(stream.Event) {}
	for _, ev := range evs {
		p.Process(ev, drop)
	}
	p.Flush(drop)
	out := map[string]counts3{}
	for name, o := range outs {
		c := o.Counts()
		out[name] = counts3{c.Satisfied, c.Violated, c.Inconclusive}
	}
	return out, mux.GroupStats(), nil
}

// sameGroups diffs two multiplexing-bucket reports: same buckets, same
// members, same sharing counters. Bucket order may differ between the
// reference and a server (registration vs config order), so buckets are
// matched by member set.
func sameGroups(want, got []checker.GroupStat) error {
	if len(want) != len(got) {
		return fmt.Errorf("%d buckets, want %d", len(got), len(want))
	}
	key := func(g checker.GroupStat) string {
		names := append([]string(nil), g.Checks...)
		sort.Strings(names)
		return strings.Join(names, ",")
	}
	byKey := map[string]checker.GroupStat{}
	for _, g := range want {
		byKey[key(g)] = g
	}
	for _, g := range got {
		w, ok := byKey[key(g)]
		if !ok {
			return fmt.Errorf("unexpected bucket %v", g.Checks)
		}
		if g.Shared != w.Shared || g.Windows != w.Windows || g.MemberEvals != w.MemberEvals || g.Draws != w.Draws {
			return fmt.Errorf("bucket %v: shared=%v windows=%d evals=%d draws=%d, want shared=%v windows=%d evals=%d draws=%d",
				g.Checks, g.Shared, g.Windows, g.MemberEvals, g.Draws, w.Shared, w.Windows, w.MemberEvals, w.Draws)
		}
	}
	return nil
}

func statsCounts(st ingest.Stats, nEvents int) (map[string]counts3, error) {
	if st.Ingested != int64(nEvents) || st.Consumed != int64(nEvents) {
		return nil, fmt.Errorf("ingested %d consumed %d, want %d each", st.Ingested, st.Consumed, nEvents)
	}
	if st.Dropped != 0 || st.DecodeErrors != 0 {
		return nil, fmt.Errorf("dropped %d, decode errors %d", st.Dropped, st.DecodeErrors)
	}
	out := map[string]counts3{}
	for _, cs := range st.Checks {
		out[cs.Name] = counts3{cs.Satisfied, cs.Violated, cs.Inconclusive}
	}
	return out, nil
}

// selftestTCP replays the events as binary frames over a real loopback
// TCP connection.
func selftestTCP(cfgs []ingest.CheckConfig, evs []stream.Event, shards, batch int) (map[string]counts3, []checker.GroupStat, error) {
	srv, err := ingest.NewServer(ingest.Config{Shards: shards, BatchSize: batch, Checks: cfgs})
	if err != nil {
		return nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	go srv.ServeTCP(ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return nil, nil, err
	}
	bw := bufio.NewWriter(conn)
	enc := wire.NewFrameEncoder(bw)
	frame := max(batch, 1)
	for off := 0; off < len(evs); off += frame {
		if err := enc.Encode(evs[off:min(off+frame, len(evs))]); err != nil {
			return nil, nil, err
		}
	}
	if err := bw.Flush(); err != nil {
		return nil, nil, err
	}
	if err := conn.Close(); err != nil {
		return nil, nil, err
	}
	if err := srv.Drain(); err != nil {
		return nil, nil, err
	}
	st := srv.Stats()
	counts, err := statsCounts(st, len(evs))
	return counts, st.Groups, err
}

// selftestHTTP replays the events as one NDJSON POST against a fresh
// server listening on a real loopback socket, then drains over HTTP.
// The server starts with ZERO checks: the suite is registered live over
// POST /checks, so the pass also proves dynamic registration is
// semantics-free — a check added over the wire counts exactly like one
// configured at boot.
func selftestHTTP(specs []string, params sound.Params, seed uint64, evict checker.EvictionPolicy, evs []stream.Event, shards, batch int) (map[string]counts3, []checker.GroupStat, error) {
	srv, err := ingest.NewServer(ingest.Config{
		Shards: shards, BatchSize: batch,
		Evict: evict, DefaultParams: params, DefaultSeed: seed,
	})
	if err != nil {
		return nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	hsrv := &http.Server{Handler: srv.Handler()}
	go hsrv.Serve(ln)
	defer hsrv.Close()
	base := "http://" + ln.Addr().String()

	for _, spec := range specs {
		resp, err := http.Post(base+"/checks", "text/plain", strings.NewReader(spec))
		if err != nil {
			return nil, nil, err
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, nil, fmt.Errorf("register %q: status %d: %s", spec, resp.StatusCode, bytes.TrimSpace(msg))
		}
	}

	var body []byte
	for _, ev := range evs {
		body = wire.AppendNDJSON(body, ev)
	}
	resp, err := http.Post(base+"/ingest", "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	var ack struct {
		Ingested int    `json:"ingested"`
		Error    string `json:"error"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ack)
	resp.Body.Close()
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK || ack.Ingested != len(evs) {
		return nil, nil, fmt.Errorf("ingest: status %d, ingested %d of %d (%s)", resp.StatusCode, ack.Ingested, len(evs), ack.Error)
	}
	resp, err = http.Post(base+"/drain", "", nil)
	if err != nil {
		return nil, nil, err
	}
	var st ingest.Stats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return nil, nil, err
	}
	if st.Err != "" {
		return nil, nil, fmt.Errorf("drain: %s", st.Err)
	}
	counts, err := statsCounts(st, len(evs))
	return counts, st.Groups, err
}
