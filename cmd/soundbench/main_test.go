package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"fig1", "fig4", "table5", "table6", "ablation"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %s", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "fig1", "-quick"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "=== fig1") || !strings.Contains(out.String(), "SOUND") {
		t.Errorf("output = %q", out.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "fig99"}, &out, &errb); code != 1 {
		t.Errorf("exit = %d", code)
	}
	if !strings.Contains(errb.String(), "unknown experiment") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark")
	}
	var out, errb bytes.Buffer
	code := run([]string{"-benchjson", "-", "-benchfilter", "EvaluatePointCheck"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errb.String())
	}
	var report struct {
		GoVersion  string `json:"go_version"`
		Benchmarks []struct {
			Name       string  `json:"name"`
			Iterations int     `json:"iterations"`
			NsPerOp    float64 `json:"ns_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if report.GoVersion == "" || len(report.Benchmarks) != 1 {
		t.Fatalf("report = %+v", report)
	}
	b := report.Benchmarks[0]
	if b.Name != "EvaluatePointCheck" || b.Iterations <= 0 || b.NsPerOp <= 0 {
		t.Errorf("benchmark record = %+v", b)
	}
}

func TestBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errb); code != 1 {
		t.Errorf("exit = %d", code)
	}
}

func TestBenchJSONCPUFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark")
	}
	var out, errb bytes.Buffer
	code := run([]string{"-benchjson", "-", "-benchfilter", "Kernel/certain", "-cpu", "1"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errb.String())
	}
	var report struct {
		GoMaxProcs int `json:"gomaxprocs"`
		Benchmarks []struct {
			Name       string `json:"name"`
			GoMaxProcs int    `json:"gomaxprocs"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(report.Benchmarks) != 1 {
		t.Fatalf("report = %+v", report)
	}
	if b := report.Benchmarks[0]; b.GoMaxProcs != 1 {
		t.Errorf("per-spec gomaxprocs = %d, want 1 (-cpu 1)", b.GoMaxProcs)
	}
}

// writeBenchJSON writes a minimal benchmark record for the cmp tests.
func writeBenchJSON(t *testing.T, path string, ns map[string]float64) {
	t.Helper()
	rep := benchReport{GoVersion: "test"}
	names := make([]string, 0, len(ns))
	for name := range ns {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rep.Benchmarks = append(rep.Benchmarks, benchRecord{Name: name, NsPerOp: ns[name]})
	}
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestBenchCmpGate(t *testing.T) {
	dir := t.TempDir()
	oldP := filepath.Join(dir, "BENCH_PR1.json")
	newP := filepath.Join(dir, "BENCH_PR2.json")
	writeBenchJSON(t, oldP, map[string]float64{"A": 100, "B": 50})
	writeBenchJSON(t, newP, map[string]float64{"A": 110, "B": 70})

	// Report-only: a 40% regression on B passes without a gate.
	var out, errb bytes.Buffer
	if code := run([]string{"-benchcmp", oldP, newP}, &out, &errb); code != 0 {
		t.Fatalf("ungated exit = %d, stderr = %s", code, errb.String())
	}
	// Gate at 20%: B (+40%) fails, A (+10%) passes.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-benchcmp", "-gate", "20", oldP, newP}, &out, &errb); code != 1 {
		t.Fatalf("gated exit = %d, want 1", code)
	}
	if msg := errb.String(); !strings.Contains(msg, "B") || strings.Contains(msg, "A:") {
		t.Errorf("gate stderr = %q", msg)
	}
	// Gate at 50%: nothing regresses that far.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-benchcmp", "-gate", "50", oldP, newP}, &out, &errb); code != 0 {
		t.Errorf("wide gate exit = %d, stderr = %s", code, errb.String())
	}
}

func TestLatestBenchFiles(t *testing.T) {
	dir := t.TempDir()
	// Non-record files — wrong prefix, non-numeric suffix, backups —
	// must be skipped, not diffed.
	for _, name := range []string{"BENCH_PR2.json", "BENCH_PR9.json", "BENCH_PR10.json",
		"other.json", "BENCH_notes.json", "BENCH_PR9.json.bak", "BENCH_PR.json", "BENCH_PR12draft.json"} {
		writeBenchJSON(t, filepath.Join(dir, name), map[string]float64{"A": 1})
	}
	oldP, newP, err := latestBenchFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Natural version order: PR9 then PR10, not lexicographic PR10 < PR2.
	if filepath.Base(oldP) != "BENCH_PR9.json" || filepath.Base(newP) != "BENCH_PR10.json" {
		t.Errorf("latest = %s, %s", oldP, newP)
	}
	if _, _, err := latestBenchFiles(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errb bytes.Buffer
	code := run([]string{"-exp", "fig1", "-quick", "-cpuprofile", cpu, "-memprofile", mem}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errb.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}
