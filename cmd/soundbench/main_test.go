package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"fig1", "fig4", "table5", "table6", "ablation"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %s", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "fig1", "-quick"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "=== fig1") || !strings.Contains(out.String(), "SOUND") {
		t.Errorf("output = %q", out.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "fig99"}, &out, &errb); code != 1 {
		t.Errorf("exit = %d", code)
	}
	if !strings.Contains(errb.String(), "unknown experiment") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark")
	}
	var out, errb bytes.Buffer
	code := run([]string{"-benchjson", "-", "-benchfilter", "EvaluatePointCheck"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errb.String())
	}
	var report struct {
		GoVersion  string `json:"go_version"`
		Benchmarks []struct {
			Name       string  `json:"name"`
			Iterations int     `json:"iterations"`
			NsPerOp    float64 `json:"ns_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if report.GoVersion == "" || len(report.Benchmarks) != 1 {
		t.Fatalf("report = %+v", report)
	}
	b := report.Benchmarks[0]
	if b.Name != "EvaluatePointCheck" || b.Iterations <= 0 || b.NsPerOp <= 0 {
		t.Errorf("benchmark record = %+v", b)
	}
}

func TestBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errb); code != 1 {
		t.Errorf("exit = %d", code)
	}
}

func TestBenchJSONCPUFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark")
	}
	var out, errb bytes.Buffer
	code := run([]string{"-benchjson", "-", "-benchfilter", "Kernel/certain", "-cpu", "1"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errb.String())
	}
	var report struct {
		GoMaxProcs int `json:"gomaxprocs"`
		Benchmarks []struct {
			Name       string `json:"name"`
			GoMaxProcs int    `json:"gomaxprocs"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(report.Benchmarks) != 1 {
		t.Fatalf("report = %+v", report)
	}
	if b := report.Benchmarks[0]; b.GoMaxProcs != 1 {
		t.Errorf("per-spec gomaxprocs = %d, want 1 (-cpu 1)", b.GoMaxProcs)
	}
}
