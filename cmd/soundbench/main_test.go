package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListExperiments(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"fig1", "fig4", "table5", "table6", "ablation"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %s", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "fig1", "-quick"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr = %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "=== fig1") || !strings.Contains(out.String(), "SOUND") {
		t.Errorf("output = %q", out.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "fig99"}, &out, &errb); code != 1 {
		t.Errorf("exit = %d", code)
	}
	if !strings.Contains(errb.String(), "unknown experiment") {
		t.Errorf("stderr = %q", errb.String())
	}
}

func TestBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errb); code != 1 {
		t.Errorf("exit = %d", code)
	}
}
