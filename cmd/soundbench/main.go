// Command soundbench regenerates the tables and figures of the SOUND
// paper's evaluation (§VI) on this machine.
//
// Usage:
//
//	soundbench -exp fig4            # one experiment
//	soundbench -exp all             # everything
//	soundbench -exp table5 -quick   # shrunken workloads, seconds not minutes
//	soundbench -list                # show available experiments
//
// Absolute throughput/latency numbers differ from the paper's testbed;
// the shapes (who wins, rough factors, crossovers) are the reproduction
// target. See EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"sound/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("soundbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp     = fs.String("exp", "all", "experiment to run (fig1, fig4..fig9, table5, table6, ablation, or all)")
		seed    = fs.Uint64("seed", 1, "deterministic seed")
		quick   = fs.Bool("quick", false, "shrink workloads for a fast smoke run")
		events  = fs.Int("events", 0, "override streamed event volume (0 = default)")
		repeats = fs.Int("repeats", 0, "override measurement repetitions (0 = default)")
		list    = fs.Bool("list", false, "list available experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	if *list {
		fmt.Fprintln(stdout, strings.Join(experiments.Names(), "\n"))
		return 0
	}

	opts := experiments.Options{Seed: *seed, Quick: *quick, Events: *events, Repeats: *repeats}
	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		start := time.Now()
		out, err := experiments.Run(name, opts)
		if err != nil {
			fmt.Fprintf(stderr, "soundbench: %s: %v\n", name, err)
			return 1
		}
		fmt.Fprintf(stdout, "=== %s (%.1fs) ===\n%s\n", name, time.Since(start).Seconds(), out)
	}
	return 0
}
