// Command soundbench regenerates the tables and figures of the SOUND
// paper's evaluation (§VI) on this machine.
//
// Usage:
//
//	soundbench -exp fig4            # one experiment
//	soundbench -exp all             # everything
//	soundbench -exp table5 -quick   # shrunken workloads, seconds not minutes
//	soundbench -list                # show available experiments
//	soundbench -benchjson out.json  # micro-benchmarks as machine-readable JSON
//	soundbench -benchcmp -gate 20   # diff the two latest BENCH_*.json, fail on >20% ns/op regressions
//	soundbench -exp fig6 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Absolute throughput/latency numbers differ from the paper's testbed;
// the shapes (who wins, rough factors, crossovers) are the reproduction
// target. See EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"testing"
	"time"

	"sound/internal/bench"
	"sound/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("soundbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp         = fs.String("exp", "all", "experiment to run (fig1, fig4..fig9, table5, table6, ablation, or all)")
		seed        = fs.Uint64("seed", 1, "deterministic seed")
		quick       = fs.Bool("quick", false, "shrink workloads for a fast smoke run")
		events      = fs.Int("events", 0, "override streamed event volume (0 = default)")
		repeats     = fs.Int("repeats", 0, "override measurement repetitions (0 = default)")
		list        = fs.Bool("list", false, "list available experiments and exit")
		benchjson   = fs.String("benchjson", "", "run the Evaluate*/Ablation* micro-benchmarks and write results as JSON to this file ('-' for stdout)")
		benchfilter = fs.String("benchfilter", "", "only run benchmarks whose name contains this substring (with -benchjson)")
		benchcmp    = fs.Bool("benchcmp", false, "compare two -benchjson files (old new; default: the two latest BENCH_*.json) and print per-spec deltas")
		gate        = fs.Float64("gate", 0, "with -benchcmp: exit nonzero when any spec's ns/op regresses by more than this percentage (0 = report only)")
		cpu         = fs.Int("cpu", 0, "set GOMAXPROCS before running benchmarks (0 = leave as is); recorded per spec in the JSON output")
		cpuprofile  = fs.String("cpuprofile", "", "write a CPU profile of the run (experiments or -benchjson) to this file")
		memprofile  = fs.String("memprofile", "", "write an allocation profile taken at exit to this file")
		mutexprof   = fs.String("mutexprofile", "", "write a mutex contention profile taken at exit to this file (sets mutex profiling fraction to 1)")
		blockprof   = fs.String("blockprofile", "", "write a goroutine blocking profile taken at exit to this file (sets block profiling rate to 1)")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *cpu > 0 {
		runtime.GOMAXPROCS(*cpu)
	}

	if *list {
		fmt.Fprintln(stdout, strings.Join(experiments.Names(), "\n"))
		return 0
	}

	if *benchcmp {
		oldPath, newPath := fs.Arg(0), fs.Arg(1)
		if fs.NArg() == 0 {
			var err error
			if oldPath, newPath, err = latestBenchFiles("."); err != nil {
				fmt.Fprintf(stderr, "soundbench: %v\n", err)
				return 1
			}
		} else if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "soundbench: -benchcmp needs exactly two JSON files (old new) or none (the two latest BENCH_*.json)")
			return 1
		}
		return runBenchCmp(oldPath, newPath, *gate, stdout, stderr)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "soundbench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "soundbench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			runtime.GC()
			writeProfile("allocs", *memprofile, stderr)
		}()
	}
	// Mutex and block profiling price the transport's synchronization:
	// channel edges show up as sync/runtime contention here, SPSC ring
	// edges do not (they spin or sleep, never blocking on a lock), so the
	// two profiles make the ring-vs-channel tradeoff measurable.
	if *mutexprof != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeProfile("mutex", *mutexprof, stderr)
	}
	if *blockprof != "" {
		runtime.SetBlockProfileRate(1)
		defer writeProfile("block", *blockprof, stderr)
	}

	if *benchjson != "" {
		return runBenchJSON(*benchjson, *benchfilter, stdout, stderr)
	}

	opts := experiments.Options{Seed: *seed, Quick: *quick, Events: *events, Repeats: *repeats}
	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		start := time.Now()
		out, err := experiments.Run(name, opts)
		if err != nil {
			fmt.Fprintf(stderr, "soundbench: %s: %v\n", name, err)
			return 1
		}
		fmt.Fprintf(stdout, "=== %s (%.1fs) ===\n%s\n", name, time.Since(start).Seconds(), out)
	}
	return 0
}

// writeProfile dumps one named runtime profile to path.
func writeProfile(name, path string, stderr io.Writer) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(stderr, "soundbench: %v\n", err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(stderr, "soundbench: %v\n", err)
	}
}

// benchRecord is one benchmark's result in the JSON output. Extra holds
// the domain metrics reported via b.ReportMetric (samples/window,
// falseviol/window, ...).
type benchRecord struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	GoMaxProcs  int                `json:"gomaxprocs"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

type benchReport struct {
	GoVersion  string        `json:"go_version"`
	GoOS       string        `json:"goos"`
	GoArch     string        `json:"goarch"`
	GoMaxProcs int           `json:"gomaxprocs"`
	UnixTime   int64         `json:"unix_time"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

// runBenchJSON executes the shared micro-benchmark bodies under
// testing.Benchmark and writes one JSON document, so CI and analysis
// scripts can track the Alg. 1 hot path without parsing `go test -bench`
// text output.
func runBenchJSON(path, filter string, stdout, stderr io.Writer) int {
	report := benchReport{
		GoVersion:  runtime.Version(),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		UnixTime:   time.Now().Unix(),
	}
	for _, spec := range bench.Specs() {
		if filter != "" && !strings.Contains(spec.Name, filter) {
			continue
		}
		fmt.Fprintf(stderr, "bench %-36s", spec.Name)
		r := testing.Benchmark(spec.Fn)
		rec := benchRecord{
			Name:        spec.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			GoMaxProcs:  runtime.GOMAXPROCS(0),
		}
		if len(r.Extra) > 0 {
			rec.Extra = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				rec.Extra[k] = v
			}
		}
		fmt.Fprintf(stderr, " %12.1f ns/op %8d allocs/op\n", rec.NsPerOp, rec.AllocsPerOp)
		report.Benchmarks = append(report.Benchmarks, rec)
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "soundbench: %v\n", err)
		return 1
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = stdout.Write(buf)
	} else {
		err = os.WriteFile(path, buf, 0o644)
	}
	if err != nil {
		fmt.Fprintf(stderr, "soundbench: %v\n", err)
		return 1
	}
	return 0
}

// latestBenchFiles returns the two newest checked-in benchmark records
// (BENCH_PR<n>.json in natural version order), the default operands of
// -benchcmp so CI can diff "the last PR vs this one" without naming
// files. Files that merely resemble a record (BENCH_notes.json, editor
// backups) are skipped, not misread as the latest PR.
func latestBenchFiles(dir string) (oldPath, newPath string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", "", err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && isBenchRecord(e.Name()) {
			names = append(names, e.Name())
		}
	}
	if len(names) < 2 {
		return "", "", fmt.Errorf("need two BENCH_PR<n>.json files in %s, found %d", dir, len(names))
	}
	sort.Slice(names, func(i, j int) bool { return naturalLess(names[i], names[j]) })
	return filepath.Join(dir, names[len(names)-2]), filepath.Join(dir, names[len(names)-1]), nil
}

// isBenchRecord reports whether name is exactly BENCH_PR<digits>.json.
func isBenchRecord(name string) bool {
	mid, ok := strings.CutPrefix(name, "BENCH_PR")
	if !ok {
		return false
	}
	digits, ok := strings.CutSuffix(mid, ".json")
	if !ok || digits == "" {
		return false
	}
	for i := 0; i < len(digits); i++ {
		if !isDigit(digits[i]) {
			return false
		}
	}
	return true
}

// naturalLess orders strings with embedded integers numerically, so
// BENCH_PR9.json sorts before BENCH_PR10.json.
func naturalLess(a, b string) bool {
	for a != "" && b != "" {
		if isDigit(a[0]) && isDigit(b[0]) {
			ai, an := leadingInt(a)
			bi, bn := leadingInt(b)
			if ai != bi {
				return ai < bi
			}
			a, b = a[an:], b[bn:]
			continue
		}
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		a, b = a[1:], b[1:]
	}
	return a == "" && b != ""
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func leadingInt(s string) (v int64, n int) {
	for n < len(s) && isDigit(s[n]) {
		v = v*10 + int64(s[n]-'0')
		n++
	}
	return v, n
}

// runBenchCmp diffs two -benchjson reports spec by spec: ns/op and
// allocs/op deltas for every benchmark present in both, plus any extra
// domain metrics (points/sec, ns/event, ...) the spec reported. Specs
// present in only one file are listed so a rename or new benchmark is
// visible rather than silently dropped. A nonzero gate turns the diff
// into a check: any spec whose ns/op regressed by more than gate percent
// fails the run.
func runBenchCmp(oldPath, newPath string, gate float64, stdout, stderr io.Writer) int {
	load := func(path string) (*benchReport, error) {
		buf, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var r benchReport
		if err := json.Unmarshal(buf, &r); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &r, nil
	}
	oldRep, err := load(oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "soundbench: %v\n", err)
		return 1
	}
	newRep, err := load(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "soundbench: %v\n", err)
		return 1
	}

	newByName := make(map[string]benchRecord, len(newRep.Benchmarks))
	for _, rec := range newRep.Benchmarks {
		newByName[rec.Name] = rec
	}
	pct := func(oldV, newV float64) string {
		if oldV == 0 {
			return "    n/a"
		}
		return fmt.Sprintf("%+6.1f%%", (newV-oldV)/oldV*100)
	}

	fmt.Fprintf(stdout, "benchcmp %s -> %s\n", oldPath, newPath)
	fmt.Fprintf(stdout, "%-36s %14s %14s %8s\n", "spec", "old ns/op", "new ns/op", "delta")
	var regressions []string
	seen := make(map[string]bool, len(oldRep.Benchmarks))
	for _, oldRec := range oldRep.Benchmarks {
		seen[oldRec.Name] = true
		newRec, ok := newByName[oldRec.Name]
		if !ok {
			fmt.Fprintf(stdout, "%-36s %14.1f %14s %8s\n", oldRec.Name, oldRec.NsPerOp, "-", "gone")
			continue
		}
		fmt.Fprintf(stdout, "%-36s %14.1f %14.1f %8s\n",
			oldRec.Name, oldRec.NsPerOp, newRec.NsPerOp, pct(oldRec.NsPerOp, newRec.NsPerOp))
		if gate > 0 && oldRec.NsPerOp > 0 && (newRec.NsPerOp-oldRec.NsPerOp)/oldRec.NsPerOp*100 > gate {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.1f -> %.1f ns/op (%s > +%.1f%%)",
					oldRec.Name, oldRec.NsPerOp, newRec.NsPerOp,
					strings.TrimSpace(pct(oldRec.NsPerOp, newRec.NsPerOp)), gate))
		}
		if oldRec.AllocsPerOp != newRec.AllocsPerOp {
			fmt.Fprintf(stdout, "  %-34s %14d %14d %8s\n", "allocs/op",
				oldRec.AllocsPerOp, newRec.AllocsPerOp,
				pct(float64(oldRec.AllocsPerOp), float64(newRec.AllocsPerOp)))
		}
		metrics := make([]string, 0, len(oldRec.Extra))
		for metric := range oldRec.Extra {
			if _, ok := newRec.Extra[metric]; ok {
				metrics = append(metrics, metric)
			}
		}
		sort.Strings(metrics)
		for _, metric := range metrics {
			oldV, newV := oldRec.Extra[metric], newRec.Extra[metric]
			fmt.Fprintf(stdout, "  %-34s %14.1f %14.1f %8s\n", metric, oldV, newV, pct(oldV, newV))
		}
	}
	for _, newRec := range newRep.Benchmarks {
		if !seen[newRec.Name] {
			fmt.Fprintf(stdout, "%-36s %14s %14.1f %8s\n", newRec.Name, "-", newRec.NsPerOp, "new")
		}
	}
	if len(regressions) > 0 {
		fmt.Fprintf(stderr, "soundbench: %d spec(s) beyond the %.1f%% regression gate:\n", len(regressions), gate)
		for _, r := range regressions {
			fmt.Fprintf(stderr, "  %s\n", r)
		}
		return 1
	}
	return 0
}
