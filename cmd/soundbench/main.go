// Command soundbench regenerates the tables and figures of the SOUND
// paper's evaluation (§VI) on this machine.
//
// Usage:
//
//	soundbench -exp fig4            # one experiment
//	soundbench -exp all             # everything
//	soundbench -exp table5 -quick   # shrunken workloads, seconds not minutes
//	soundbench -list                # show available experiments
//	soundbench -benchjson out.json  # micro-benchmarks as machine-readable JSON
//
// Absolute throughput/latency numbers differ from the paper's testbed;
// the shapes (who wins, rough factors, crossovers) are the reproduction
// target. See EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"sound/internal/bench"
	"sound/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("soundbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp         = fs.String("exp", "all", "experiment to run (fig1, fig4..fig9, table5, table6, ablation, or all)")
		seed        = fs.Uint64("seed", 1, "deterministic seed")
		quick       = fs.Bool("quick", false, "shrink workloads for a fast smoke run")
		events      = fs.Int("events", 0, "override streamed event volume (0 = default)")
		repeats     = fs.Int("repeats", 0, "override measurement repetitions (0 = default)")
		list        = fs.Bool("list", false, "list available experiments and exit")
		benchjson   = fs.String("benchjson", "", "run the Evaluate*/Ablation* micro-benchmarks and write results as JSON to this file ('-' for stdout)")
		benchfilter = fs.String("benchfilter", "", "only run benchmarks whose name contains this substring (with -benchjson)")
		benchcmp    = fs.Bool("benchcmp", false, "compare two -benchjson files (old new) and print per-spec deltas")
		cpu         = fs.Int("cpu", 0, "set GOMAXPROCS before running benchmarks (0 = leave as is); recorded per spec in the JSON output")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *cpu > 0 {
		runtime.GOMAXPROCS(*cpu)
	}

	if *list {
		fmt.Fprintln(stdout, strings.Join(experiments.Names(), "\n"))
		return 0
	}

	if *benchcmp {
		if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "soundbench: -benchcmp needs exactly two JSON files: old new")
			return 1
		}
		return runBenchCmp(fs.Arg(0), fs.Arg(1), stdout, stderr)
	}

	if *benchjson != "" {
		return runBenchJSON(*benchjson, *benchfilter, stdout, stderr)
	}

	opts := experiments.Options{Seed: *seed, Quick: *quick, Events: *events, Repeats: *repeats}
	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		start := time.Now()
		out, err := experiments.Run(name, opts)
		if err != nil {
			fmt.Fprintf(stderr, "soundbench: %s: %v\n", name, err)
			return 1
		}
		fmt.Fprintf(stdout, "=== %s (%.1fs) ===\n%s\n", name, time.Since(start).Seconds(), out)
	}
	return 0
}

// benchRecord is one benchmark's result in the JSON output. Extra holds
// the domain metrics reported via b.ReportMetric (samples/window,
// falseviol/window, ...).
type benchRecord struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	GoMaxProcs  int                `json:"gomaxprocs"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

type benchReport struct {
	GoVersion  string        `json:"go_version"`
	GoOS       string        `json:"goos"`
	GoArch     string        `json:"goarch"`
	GoMaxProcs int           `json:"gomaxprocs"`
	UnixTime   int64         `json:"unix_time"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

// runBenchJSON executes the shared micro-benchmark bodies under
// testing.Benchmark and writes one JSON document, so CI and analysis
// scripts can track the Alg. 1 hot path without parsing `go test -bench`
// text output.
func runBenchJSON(path, filter string, stdout, stderr io.Writer) int {
	report := benchReport{
		GoVersion:  runtime.Version(),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		UnixTime:   time.Now().Unix(),
	}
	for _, spec := range bench.Specs() {
		if filter != "" && !strings.Contains(spec.Name, filter) {
			continue
		}
		fmt.Fprintf(stderr, "bench %-36s", spec.Name)
		r := testing.Benchmark(spec.Fn)
		rec := benchRecord{
			Name:        spec.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			GoMaxProcs:  runtime.GOMAXPROCS(0),
		}
		if len(r.Extra) > 0 {
			rec.Extra = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				rec.Extra[k] = v
			}
		}
		fmt.Fprintf(stderr, " %12.1f ns/op %8d allocs/op\n", rec.NsPerOp, rec.AllocsPerOp)
		report.Benchmarks = append(report.Benchmarks, rec)
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "soundbench: %v\n", err)
		return 1
	}
	buf = append(buf, '\n')
	if path == "-" {
		_, err = stdout.Write(buf)
	} else {
		err = os.WriteFile(path, buf, 0o644)
	}
	if err != nil {
		fmt.Fprintf(stderr, "soundbench: %v\n", err)
		return 1
	}
	return 0
}

// runBenchCmp diffs two -benchjson reports spec by spec: ns/op and
// allocs/op deltas for every benchmark present in both, plus any extra
// domain metrics (points/sec, ns/event, ...) the spec reported. Specs
// present in only one file are listed so a rename or new benchmark is
// visible rather than silently dropped.
func runBenchCmp(oldPath, newPath string, stdout, stderr io.Writer) int {
	load := func(path string) (*benchReport, error) {
		buf, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var r benchReport
		if err := json.Unmarshal(buf, &r); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &r, nil
	}
	oldRep, err := load(oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "soundbench: %v\n", err)
		return 1
	}
	newRep, err := load(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "soundbench: %v\n", err)
		return 1
	}

	newByName := make(map[string]benchRecord, len(newRep.Benchmarks))
	for _, rec := range newRep.Benchmarks {
		newByName[rec.Name] = rec
	}
	pct := func(oldV, newV float64) string {
		if oldV == 0 {
			return "    n/a"
		}
		return fmt.Sprintf("%+6.1f%%", (newV-oldV)/oldV*100)
	}

	fmt.Fprintf(stdout, "benchcmp %s -> %s\n", oldPath, newPath)
	fmt.Fprintf(stdout, "%-36s %14s %14s %8s\n", "spec", "old ns/op", "new ns/op", "delta")
	seen := make(map[string]bool, len(oldRep.Benchmarks))
	for _, oldRec := range oldRep.Benchmarks {
		seen[oldRec.Name] = true
		newRec, ok := newByName[oldRec.Name]
		if !ok {
			fmt.Fprintf(stdout, "%-36s %14.1f %14s %8s\n", oldRec.Name, oldRec.NsPerOp, "-", "gone")
			continue
		}
		fmt.Fprintf(stdout, "%-36s %14.1f %14.1f %8s\n",
			oldRec.Name, oldRec.NsPerOp, newRec.NsPerOp, pct(oldRec.NsPerOp, newRec.NsPerOp))
		if oldRec.AllocsPerOp != newRec.AllocsPerOp {
			fmt.Fprintf(stdout, "  %-34s %14d %14d %8s\n", "allocs/op",
				oldRec.AllocsPerOp, newRec.AllocsPerOp,
				pct(float64(oldRec.AllocsPerOp), float64(newRec.AllocsPerOp)))
		}
		metrics := make([]string, 0, len(oldRec.Extra))
		for metric := range oldRec.Extra {
			if _, ok := newRec.Extra[metric]; ok {
				metrics = append(metrics, metric)
			}
		}
		sort.Strings(metrics)
		for _, metric := range metrics {
			oldV, newV := oldRec.Extra[metric], newRec.Extra[metric]
			fmt.Fprintf(stdout, "  %-34s %14.1f %14.1f %8s\n", metric, oldV, newV, pct(oldV, newV))
		}
	}
	for _, newRec := range newRep.Benchmarks {
		if !seen[newRec.Name] {
			fmt.Fprintf(stdout, "%-36s %14s %14.1f %8s\n", newRec.Name, "-", newRec.NsPerOp, "new")
		}
	}
	return 0
}
