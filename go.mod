module sound

go 1.22
