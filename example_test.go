package sound_test

import (
	"fmt"

	"sound"
)

// ExampleCheck_Run demonstrates the core flow: define a check, evaluate
// it with quality-aware resampling, and read the three-valued outcomes.
func ExampleCheck_Run() {
	// A certain in-range point, a point sitting exactly on the lower
	// bound with large symmetric uncertainty, and a clear violation.
	data, _ := sound.NewSeries(
		[]float64{1, 2, 3},
		[]float64{50, 0, -40},
		[]float64{1, 5, 1},
		[]float64{1, 5, 1},
	)
	check := sound.Check{
		Name:        "plausible-range",
		Constraint:  sound.Range(0, 100),
		SeriesNames: []string{"sensor"},
		Window:      sound.PointWindow{},
	}
	eval, _ := sound.NewEvaluator(sound.Params{Credibility: 0.95, MaxSamples: 100}, 4)
	results, _ := check.Run(eval, []sound.Series{data})
	for _, r := range results {
		fmt.Printf("t=%g: %v\n", r.Window.Start, r.Outcome)
	}
	// Output:
	// t=1: ⊤
	// t=2: ⊣
	// t=3: ⊥
}

// ExampleEvaluateNaive contrasts the naive (quality-ignorant) evaluation
// with SOUND on the same borderline point.
func ExampleEvaluateNaive() {
	borderline, _ := sound.NewSeries(
		[]float64{0}, []float64{10.2}, []float64{0.2}, []float64{8},
	)
	c := sound.GreaterThan(10)
	tuple := sound.PointWindow{}.Windows([]sound.Series{borderline})[0]

	naive := sound.EvaluateNaive(c, tuple)
	eval, _ := sound.NewEvaluator(sound.Params{Credibility: 0.95, MaxSamples: 100}, 3)
	robust := eval.Evaluate(c, tuple)

	fmt.Printf("naive: %v (decides from the raw value)\n", naive)
	fmt.Printf("SOUND: %v (the downward error bar holds most of the mass)\n", robust.Outcome)
	// Output:
	// naive: ⊤ (decides from the raw value)
	// SOUND: ⊥ (the downward error bar holds most of the mass)
}

// ExampleChangePoints shows the violation drill-down: detect an outcome
// flip and ask for its root-cause explanations.
func ExampleChangePoints() {
	// An uncertainty regression: same values throughout, but the second
	// half carries 50x the error bars.
	n := 60
	t := make([]float64, n)
	v := make([]float64, n)
	sig := make([]float64, n)
	for i := 0; i < n; i++ {
		t[i] = float64(i)
		v[i] = 10.5
		sig[i] = 0.1
		if i >= 30 {
			sig[i] = 5
		}
	}
	data, _ := sound.NewSeries(t, v, sig, sig)

	c := sound.GreaterThan(10)
	c.Granularity = sound.WindowTime
	check := sound.Check{
		Name: "above-threshold", Constraint: c,
		SeriesNames: []string{"s"}, Window: sound.TimeWindow{Size: 15},
	}
	eval, _ := sound.NewEvaluator(sound.Params{Credibility: 0.95, MaxSamples: 200}, 5)
	results, _ := check.Run(eval, []sound.Series{data})

	analyzer, _ := sound.NewAnalyzer(sound.Params{Credibility: 0.95, MaxSamples: 200}, 7)
	for _, cp := range sound.ChangePoints(results) {
		rep := analyzer.Explain(check.Constraint, cp)
		fmt.Println(rep.Explanations)
	}
	// Output:
	// [E4 (high value uncertainty)]
}

// ExampleSuggestChecks shows constraint suggestion from trusted data.
func ExampleSuggestChecks() {
	counter := make(sound.Series, 40)
	total := 0.0
	for i := range counter {
		total += 1 + float64(i%3)
		counter[i] = sound.Point{T: float64(i), V: total}
	}
	sugs := sound.SuggestChecks(map[string]sound.Series{"work": counter}, sound.ProfileOptions{})
	for _, s := range sugs {
		fmt.Println(s.Check.Name)
	}
	// Output:
	// suggested-monotone(work)
	// suggested-nonneg(work)
	// suggested-range(work)
}
